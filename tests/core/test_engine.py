"""Tests for the unified SAIM engine (repro.core.engine).

The load-bearing guarantee: ``SaimEngine`` with ``num_replicas=1``
reproduces the pre-engine serial solver bit-for-bit (the golden values below
were captured from the legacy ``SelfAdaptiveIsingMachine`` loop before the
refactor), and every config feature works identically at any replica count.
"""

import numpy as np
import pytest

from repro.core.engine import SaimEngine
from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.ising.pt_machine import PTMachine
from repro.problems.generators import generate_qkp
from tests.helpers import tiny_knapsack_problem

GOLDEN_CONFIG = SaimConfig(num_iterations=20, mcs_per_run=80, eta=80.0,
                           eta_decay="sqrt", normalize_step=True)
TINY = SaimConfig(num_iterations=15, mcs_per_run=100,
                  eta=5.0, eta_decay="sqrt", normalize_step=True)


class TestEngineValidation:
    def test_rejects_bad_replicas(self):
        with pytest.raises(ValueError):
            SaimEngine(TINY, num_replicas=0)

    def test_rejects_bad_aggregate(self):
        with pytest.raises(ValueError):
            SaimEngine(TINY, aggregate="median")

    def test_default_config(self):
        engine = SaimEngine()
        assert engine.config.num_iterations == SaimConfig().num_iterations
        assert engine.num_replicas == 1


class TestSerialGoldenParity:
    """Pinned against the legacy serial solver on a fixed seed.

    These exact values were produced by the pre-refactor
    ``SelfAdaptiveIsingMachine`` on this instance/seed; the engine's
    ``num_replicas=1`` path must keep reproducing them bit-for-bit.
    """

    @pytest.fixture(scope="class")
    def result(self):
        instance = generate_qkp(14, 0.5, rng=3)
        return SaimEngine(GOLDEN_CONFIG, num_replicas=1).solve(
            instance.to_problem(), rng=7
        )

    def test_best_cost(self, result):
        assert result.best_cost == -2690.0

    def test_final_lambdas(self, result):
        assert result.final_lambdas.tolist() == [17.280833491648053]

    def test_trace_costs_and_energies(self, result):
        assert float(result.trace.sample_costs.sum()) == -45773.0
        assert float(result.trace.energies.sum()) == -683.0732467131298

    def test_feasibility_pattern(self, result):
        assert result.trace.feasible.astype(int).tolist() == [
            0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1
        ]
        assert result.num_feasible == 10

    def test_accounting(self, result):
        assert result.num_iterations == 20
        assert result.num_replicas == 1
        assert result.total_mcs == 20 * 80

    def test_legacy_shim_matches_engine(self, result):
        instance = generate_qkp(14, 0.5, rng=3)
        shim = SelfAdaptiveIsingMachine(GOLDEN_CONFIG).solve(
            instance.to_problem(), rng=7
        )
        assert shim.best_cost == result.best_cost
        np.testing.assert_array_equal(shim.final_lambdas, result.final_lambdas)
        np.testing.assert_array_equal(
            shim.trace.sample_costs, result.trace.sample_costs
        )


class TestReplicaFeatureParity:
    """Every SaimConfig knob must work at any replica count."""

    def test_schedule_honored_at_replicas(self):
        config = SaimConfig(num_iterations=10, mcs_per_run=60, eta=5.0,
                            schedule="geometric", eta_decay="sqrt",
                            normalize_step=True)
        result = SaimEngine(config, num_replicas=3).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.num_iterations == 10

    def test_target_cost_early_exit_with_replicas(self):
        config = SaimConfig(num_iterations=50, mcs_per_run=100, eta=5.0,
                            eta_decay="sqrt", normalize_step=True,
                            target_cost=-8.0)
        result = SaimEngine(config, num_replicas=4).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.best_cost == pytest.approx(-8.0)
        assert result.num_iterations < 50
        assert result.total_mcs == result.num_iterations * 4 * 100

    def test_patience_early_exit_with_replicas(self):
        config = SaimConfig(num_iterations=200, mcs_per_run=100, eta=5.0,
                            eta_decay="sqrt", normalize_step=True, patience=3)
        result = SaimEngine(config, num_replicas=2).solve(
            tiny_knapsack_problem(), rng=1
        )
        assert result.found_feasible
        assert result.num_iterations < 200

    def test_warm_started_lambdas_with_replicas(self):
        result = SaimEngine(TINY, num_replicas=3).solve(
            tiny_knapsack_problem(), rng=2, initial_lambdas=np.array([4.0])
        )
        assert result.found_feasible
        # lambda history starts at the warm-start value
        assert result.trace.lambdas[0, 0] == 4.0

    def test_custom_factory_without_anneal_many_uses_fallback(self):
        def factory(model, rng=None):
            return PTMachine(model, rng=rng, num_replicas=4)

        result = SaimEngine(TINY, num_replicas=2, machine_factory=factory).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.num_iterations == 15
        assert result.num_replicas == 2

    def test_mean_aggregate_with_replicas(self):
        result = SaimEngine(TINY, num_replicas=4, aggregate="mean").solve(
            tiny_knapsack_problem(), rng=1
        )
        assert result.found_feasible

    def test_iteration_accounting_reports_k_not_k_times_r(self):
        result = SaimEngine(TINY, num_replicas=4).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.num_iterations == 15
        assert result.num_replicas == 4
        assert result.total_mcs == 15 * 4 * 100
        assert 0.0 <= result.feasible_ratio <= 1.0
        assert result.trace.sample_costs.shape == (15,)

    def test_replicas_not_worse_than_serial_incumbent(self):
        """More replicas per iteration never hurt the seeded incumbent
        search on the tiny instance (every replica is harvested)."""
        serial = SaimEngine(TINY, num_replicas=1).solve(
            tiny_knapsack_problem(), rng=3
        )
        parallel = SaimEngine(TINY, num_replicas=8).solve(
            tiny_knapsack_problem(), rng=3
        )
        assert parallel.best_cost <= serial.best_cost
