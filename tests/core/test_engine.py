"""Tests for the unified SAIM engine (repro.core.engine).

The load-bearing guarantee: ``SaimEngine`` with ``num_replicas=1``
reproduces the pre-engine serial solver bit-for-bit (the golden values below
were captured from the legacy ``SelfAdaptiveIsingMachine`` loop before the
refactor), and every config feature works identically at any replica count.
"""

import numpy as np
import pytest

from repro.core.engine import SaimEngine
from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.ising.pt_machine import PTMachine
from repro.problems.generators import generate_qkp
from tests.helpers import tiny_knapsack_problem

GOLDEN_CONFIG = SaimConfig(num_iterations=20, mcs_per_run=80, eta=80.0,
                           eta_decay="sqrt", normalize_step=True)
TINY = SaimConfig(num_iterations=15, mcs_per_run=100,
                  eta=5.0, eta_decay="sqrt", normalize_step=True)


class TestEngineValidation:
    def test_rejects_bad_replicas(self):
        with pytest.raises(ValueError):
            SaimEngine(TINY, num_replicas=0)

    def test_rejects_bad_aggregate(self):
        with pytest.raises(ValueError):
            SaimEngine(TINY, aggregate="median")

    def test_default_config(self):
        engine = SaimEngine()
        assert engine.config.num_iterations == SaimConfig().num_iterations
        assert engine.num_replicas == 1


class TestSerialGoldenParity:
    """Pinned against the legacy serial solver on a fixed seed.

    The cost/lambda/feasibility values were produced by the pre-engine
    ``SelfAdaptiveIsingMachine`` loop on this instance/seed, and the
    engine's ``num_replicas=1`` path — now the prepared-program lock-step
    kernel — must keep reproducing them bit-for-bit (same noise stream,
    same Gibbs chain).  The *energy* pin is the one value allowed to move
    when the kernel's accumulation changes: the lock-step kernel recomputes
    per-sweep energies with a float64 einsum over maintained inputs, which
    rounds the last bit differently than the retired kernel's incremental
    updates (the samples those energies describe are identical).
    """

    @pytest.fixture(scope="class")
    def result(self):
        instance = generate_qkp(14, 0.5, rng=3)
        return SaimEngine(GOLDEN_CONFIG, num_replicas=1).solve(
            instance.to_problem(), rng=7
        )

    def test_best_cost(self, result):
        assert result.best_cost == -2690.0

    def test_final_lambdas(self, result):
        assert result.final_lambdas.tolist() == [17.280833491648053]

    def test_trace_costs_and_energies(self, result):
        assert float(result.trace.sample_costs.sum()) == -45773.0
        assert float(result.trace.energies.sum()) == -683.0732467131296

    def test_feasibility_pattern(self, result):
        assert result.trace.feasible.astype(int).tolist() == [
            0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1
        ]
        assert result.num_feasible == 10

    def test_accounting(self, result):
        assert result.num_iterations == 20
        assert result.num_replicas == 1
        assert result.total_mcs == 20 * 80

    def test_legacy_shim_matches_engine(self, result):
        instance = generate_qkp(14, 0.5, rng=3)
        shim = SelfAdaptiveIsingMachine(GOLDEN_CONFIG).solve(
            instance.to_problem(), rng=7
        )
        assert shim.best_cost == result.best_cost
        np.testing.assert_array_equal(shim.final_lambdas, result.final_lambdas)
        np.testing.assert_array_equal(
            shim.trace.sample_costs, result.trace.sample_costs
        )


class TestReplicaFeatureParity:
    """Every SaimConfig knob must work at any replica count."""

    def test_schedule_honored_at_replicas(self):
        config = SaimConfig(num_iterations=10, mcs_per_run=60, eta=5.0,
                            schedule="geometric", eta_decay="sqrt",
                            normalize_step=True)
        result = SaimEngine(config, num_replicas=3).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.num_iterations == 10

    def test_target_cost_early_exit_with_replicas(self):
        config = SaimConfig(num_iterations=50, mcs_per_run=100, eta=5.0,
                            eta_decay="sqrt", normalize_step=True,
                            target_cost=-8.0)
        result = SaimEngine(config, num_replicas=4).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.best_cost == pytest.approx(-8.0)
        assert result.num_iterations < 50
        assert result.total_mcs == result.num_iterations * 4 * 100

    def test_patience_early_exit_with_replicas(self):
        config = SaimConfig(num_iterations=200, mcs_per_run=100, eta=5.0,
                            eta_decay="sqrt", normalize_step=True, patience=3)
        result = SaimEngine(config, num_replicas=2).solve(
            tiny_knapsack_problem(), rng=1
        )
        assert result.found_feasible
        assert result.num_iterations < 200

    def test_warm_started_lambdas_with_replicas(self):
        result = SaimEngine(TINY, num_replicas=3).solve(
            tiny_knapsack_problem(), rng=2, initial_lambdas=np.array([4.0])
        )
        assert result.found_feasible
        # lambda history starts at the warm-start value
        assert result.trace.lambdas[0, 0] == 4.0

    def test_custom_factory_without_anneal_many_uses_fallback(self):
        def factory(model, rng=None):
            return PTMachine(model, rng=rng, num_replicas=4)

        result = SaimEngine(TINY, num_replicas=2, machine_factory=factory).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.num_iterations == 15
        assert result.num_replicas == 2

    def test_mean_aggregate_with_replicas(self):
        result = SaimEngine(TINY, num_replicas=4, aggregate="mean").solve(
            tiny_knapsack_problem(), rng=1
        )
        assert result.found_feasible

    def test_iteration_accounting_reports_k_not_k_times_r(self):
        result = SaimEngine(TINY, num_replicas=4).solve(
            tiny_knapsack_problem(), rng=0
        )
        assert result.num_iterations == 15
        assert result.num_replicas == 4
        assert result.total_mcs == 15 * 4 * 100
        assert 0.0 <= result.feasible_ratio <= 1.0
        assert result.trace.sample_costs.shape == (15,)

    def test_replicas_not_worse_than_serial_incumbent(self):
        """More replicas per iteration never hurt the seeded incumbent
        search on the tiny instance (every replica is harvested)."""
        serial = SaimEngine(TINY, num_replicas=1).solve(
            tiny_knapsack_problem(), rng=3
        )
        parallel = SaimEngine(TINY, num_replicas=8).solve(
            tiny_knapsack_problem(), rng=3
        )
        assert parallel.best_cost <= serial.best_cost


class _SplitReadoutMachine:
    """Stub backend whose best-sample read-out disagrees with its last.

    Replica 0 has the lowest *last* energy; replica 1 has the lowest *best*
    energy and a distinctive best sample (all spins up).  A correct
    ``read_best`` loop must therefore lead with replica 1 and trace
    ``best_energies`` — leading by ``last_energies`` is the regression.
    """

    def __init__(self, model, rng=None):
        self._n = model.num_spins

    @property
    def num_spins(self):
        return self._n

    def set_fields(self, fields, offset=None):
        pass

    def anneal_many(self, beta_schedule, num_replicas, initial=None):
        from repro.ising.backend import BatchAnnealResult

        n = self._n
        last = -np.ones((num_replicas, n))
        best = -np.ones((num_replicas, n))
        last_energies = np.arange(num_replicas, dtype=float)  # replica 0 wins
        best_energies = np.full(num_replicas, 5.0)
        if num_replicas > 1:
            best[1] = np.ones(n)  # x = all ones: infeasible, distinct cost
            best_energies[1] = -5.0  # replica 1 wins
        return BatchAnnealResult(
            last_samples=last,
            last_energies=last_energies,
            best_samples=best,
            best_energies=best_energies,
            num_sweeps=len(beta_schedule),
        )


class TestReadBestReplicaReadout:
    """Regression: with ``read_best`` at R > 1 the lead replica and the
    trace energies must come from ``best_energies``, not ``last_energies``
    (the pre-fix engine mixed the two and corrupted traces and updates)."""

    CONFIG = SaimConfig(num_iterations=3, mcs_per_run=10, eta=5.0,
                        read_best=True)

    def _solve(self):
        problem = tiny_knapsack_problem()
        return SaimEngine(
            self.CONFIG, num_replicas=3,
            machine_factory=_SplitReadoutMachine,
        ).solve(problem, rng=0), problem

    def test_trace_energies_come_from_best_energies(self):
        result, _ = self._solve()
        # Pre-fix: argmin(last_energies) = replica 0, energy 0.0 recorded.
        assert result.trace.energies.tolist() == [-5.0, -5.0, -5.0]

    def test_lead_sample_is_best_replicas_sample(self):
        result, problem = self._solve()
        # Replica 1's best sample is all-ones => x = (1, 1, 1), which
        # violates the knapsack constraint: every trace cost must be its
        # objective and never the feasible all-zeros last sample.
        all_ones_cost = problem.objective(np.ones(3, dtype=np.int8))
        assert result.trace.sample_costs.tolist() == [all_ones_cost] * 3
        assert not result.trace.feasible.any()

    def test_serial_read_best_traces_best_energy(self):
        result = SaimEngine(
            self.CONFIG, num_replicas=1,
            machine_factory=_SplitReadoutMachine,
        ).solve(tiny_knapsack_problem(), rng=0)
        # R = 1: the single replica's best energy (5.0), not its last (0.0).
        assert result.trace.energies.tolist() == [5.0, 5.0, 5.0]
