"""Tests for the hybrid slack encoding (repro.core.hybrid_encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import encode_with_slacks
from repro.core.hybrid_encoding import (
    encode_with_hybrid_slacks,
    hybrid_slack_weights,
    max_coefficient_ratio,
)
from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.problems.generators import generate_qkp
from tests.helpers import all_binary_vectors, tiny_knapsack_problem


class TestHybridWeights:
    def test_zero_unary_is_plain_binary(self):
        np.testing.assert_array_equal(hybrid_slack_weights(5, 0), [1, 2, 4])

    def test_zero_bound_is_empty(self):
        assert hybrid_slack_weights(0, 4).size == 0

    @given(st.integers(min_value=1, max_value=5000),
           st.integers(min_value=0, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_covers_range_contiguously(self, bound, unary_bits):
        """Every integer in [0, bound] must be representable."""
        weights = hybrid_slack_weights(bound, unary_bits)
        reachable = {0}
        for w in weights:
            reachable |= {r + w for r in reachable}
        for value in range(0, bound + 1):
            assert value in reachable, (bound, unary_bits, value)

    @given(st.integers(min_value=32, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_reduces_coefficient_spread(self, bound):
        """More unary bits means a smaller max/min coefficient ratio."""
        binary = hybrid_slack_weights(bound, 0)
        hybrid = hybrid_slack_weights(bound, 6)
        assert max_coefficient_ratio(hybrid) <= max_coefficient_ratio(binary)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            hybrid_slack_weights(-1, 2)
        with pytest.raises(ValueError):
            hybrid_slack_weights(5, -1)


class TestMaxCoefficientRatio:
    def test_uniform_weights(self):
        assert max_coefficient_ratio(np.array([3.0, 3.0])) == 1.0

    def test_binary_spread(self):
        assert max_coefficient_ratio(np.array([1.0, 2.0, 4.0, 8.0])) == 8.0

    def test_empty(self):
        assert max_coefficient_ratio(np.array([])) == 1.0


class TestEncodeWithHybridSlacks:
    def test_equivalent_feasible_set_on_original_vars(self):
        problem = tiny_knapsack_problem()
        hybrid = encode_with_hybrid_slacks(problem, unary_bits=2)
        n_ext = hybrid.problem.num_variables
        feasible_original = set()
        for x_ext in all_binary_vectors(n_ext):
            if hybrid.problem.is_feasible(x_ext):
                feasible_original.add(tuple(hybrid.restrict(x_ext)))
        expected = {
            tuple(x)
            for x in all_binary_vectors(3)
            if problem.is_feasible(x)
        }
        assert feasible_original == expected

    def test_slack_values_use_hybrid_weights(self):
        problem = tiny_knapsack_problem()  # capacity 6
        hybrid = encode_with_hybrid_slacks(problem, unary_bits=2)
        weights = hybrid.slack_weights[0]
        x_ext = np.zeros(hybrid.problem.num_variables, dtype=np.int8)
        x_ext[hybrid.slack_slices[0]] = 1
        assert hybrid.slack_values(x_ext)[0] == pytest.approx(weights.sum())

    def test_objective_preserved(self):
        problem = tiny_knapsack_problem()
        hybrid = encode_with_hybrid_slacks(problem, unary_bits=3)
        for x in all_binary_vectors(3):
            x_ext = np.concatenate(
                [x, np.zeros(hybrid.num_slack, dtype=np.int8)]
            )
            assert hybrid.problem.objective(x_ext) == pytest.approx(
                problem.objective(x)
            )

    def test_saim_solves_through_hybrid_encoding(self):
        instance = generate_qkp(15, 0.5, rng=9)
        encoded = encode_with_hybrid_slacks(instance.to_problem(), unary_bits=4)
        config = SaimConfig(num_iterations=40, mcs_per_run=150,
                            eta=80.0, eta_decay="sqrt", normalize_step=True)
        result = SelfAdaptiveIsingMachine(config).solve_encoded(encoded, rng=0)
        assert result.found_feasible
        assert instance.is_feasible(result.best_x)

    def test_uses_more_variables_than_binary(self):
        problem = generate_qkp(10, 0.5, rng=10).to_problem()
        binary = encode_with_slacks(problem)
        hybrid = encode_with_hybrid_slacks(problem, unary_bits=6)
        assert hybrid.num_slack >= binary.num_slack
