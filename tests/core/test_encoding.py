"""Tests for slack encoding and normalization (repro.core.encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import encode_with_slacks, normalize_problem
from repro.core.problem import ConstrainedProblem, LinearConstraints
from repro.problems.generators import generate_qkp
from repro.utils.binary import binary_decomposition_width
from tests.helpers import all_binary_vectors, tiny_knapsack_problem


class TestEncodeWithSlacks:
    def test_slack_count_follows_paper_rule(self):
        problem = tiny_knapsack_problem()  # capacity 6 -> Q = 3 slack bits
        encoded = encode_with_slacks(problem)
        assert encoded.num_slack == binary_decomposition_width(6) == 3
        assert encoded.problem.num_variables == 6

    def test_equalities_only_after_encoding(self):
        encoded = encode_with_slacks(tiny_knapsack_problem())
        assert encoded.problem.inequalities.num_constraints == 0
        assert encoded.problem.equalities.num_constraints == 1

    def test_objective_unchanged_on_original_variables(self):
        problem = tiny_knapsack_problem()
        encoded = encode_with_slacks(problem)
        for x in all_binary_vectors(3):
            x_ext = np.concatenate([x, np.zeros(encoded.num_slack, dtype=np.int8)])
            assert encoded.problem.objective(x_ext) == pytest.approx(
                problem.objective(x)
            )

    def test_feasible_x_has_feasible_extension(self):
        """Every feasible original x extends to a feasible encoded state."""
        problem = tiny_knapsack_problem()
        encoded = encode_with_slacks(problem)
        weights = np.array([2.0, 3.0, 4.0])
        for x in all_binary_vectors(3):
            slack_needed = 6.0 - weights @ x
            if slack_needed < 0:
                continue  # infeasible original state
            # Decompose the exact slack into the slack bits.
            bits = [(int(slack_needed) >> q) & 1 for q in range(encoded.num_slack)]
            x_ext = np.concatenate([x, np.array(bits, dtype=np.int8)])
            assert encoded.problem.is_feasible(x_ext)

    def test_encoded_feasibility_implies_original(self):
        """Feasible encoded states project to feasible original states."""
        problem = tiny_knapsack_problem()
        encoded = encode_with_slacks(problem)
        n_ext = encoded.problem.num_variables
        for x_ext in all_binary_vectors(n_ext):
            if encoded.problem.is_feasible(x_ext):
                assert problem.is_feasible(encoded.restrict(x_ext))

    def test_restrict_and_slack_values(self):
        encoded = encode_with_slacks(tiny_knapsack_problem())
        x_ext = np.array([1, 0, 1, 0, 1, 1], dtype=np.int8)
        np.testing.assert_array_equal(encoded.restrict(x_ext), [1, 0, 1])
        # Slack bits (0, 1, 1) encode 0 + 2 + 4 = 6.
        np.testing.assert_array_equal(encoded.slack_values(x_ext), [6.0])

    def test_restrict_length_checked(self):
        encoded = encode_with_slacks(tiny_knapsack_problem())
        with pytest.raises(ValueError):
            encoded.restrict(np.zeros(4))

    def test_negative_bound_rejected(self):
        problem = ConstrainedProblem(
            np.zeros((2, 2)),
            np.array([-1.0, -1.0]),
            inequalities=LinearConstraints(np.ones((1, 2)), np.array([-1.0])),
        )
        with pytest.raises(ValueError, match="negative"):
            encode_with_slacks(problem)

    def test_existing_equalities_preserved(self):
        problem = ConstrainedProblem(
            np.zeros((2, 2)),
            np.array([-1.0, -1.0]),
            equalities=LinearConstraints(np.array([[1.0, 1.0]]), np.array([1.0])),
            inequalities=LinearConstraints(np.array([[1.0, 0.0]]), np.array([1.0])),
        )
        encoded = encode_with_slacks(problem)
        assert encoded.problem.equalities.num_constraints == 2
        # First row is the original equality, padded with zero slack coeffs.
        np.testing.assert_array_equal(
            encoded.problem.equalities.coefficients[0, :2], [1.0, 1.0]
        )
        assert np.all(encoded.problem.equalities.coefficients[0, 2:] == 0)

    def test_qkp_slack_extension_dimensions(self):
        instance = generate_qkp(12, 0.5, rng=0)
        encoded = encode_with_slacks(instance.to_problem())
        expected_slack = binary_decomposition_width(int(np.ceil(instance.capacity)))
        assert encoded.num_slack == expected_slack
        assert encoded.num_original == 12


class TestNormalize:
    def test_coefficients_bounded_by_one(self):
        instance = generate_qkp(15, 0.6, rng=1)
        encoded = encode_with_slacks(instance.to_problem())
        normalized, _ = normalize_problem(encoded.problem)
        assert np.max(np.abs(normalized.quadratic)) <= 1.0 + 1e-12
        assert np.max(np.abs(normalized.linear)) <= 1.0 + 1e-12
        eq = normalized.equalities
        assert np.max(np.abs(eq.coefficients)) <= 1.0 + 1e-12
        assert np.max(np.abs(eq.bounds)) <= 1.0 + 1e-12

    def test_feasible_set_preserved(self):
        problem = encode_with_slacks(tiny_knapsack_problem()).problem
        normalized, _ = normalize_problem(problem)
        for x in all_binary_vectors(problem.num_variables):
            assert problem.is_feasible(x) == normalized.is_feasible(x, tol=1e-9)

    def test_objective_scales_linearly(self):
        problem = encode_with_slacks(tiny_knapsack_problem()).problem
        normalized, scales = normalize_problem(problem)
        for x in all_binary_vectors(problem.num_variables)[:16]:
            assert scales.objective_scale * normalized.objective(x) == pytest.approx(
                problem.objective(x)
            )

    def test_rejects_inequalities(self):
        with pytest.raises(ValueError, match="equality-form"):
            normalize_problem(tiny_knapsack_problem())

    def test_zero_objective_scale_handled(self):
        problem = ConstrainedProblem(
            np.zeros((2, 2)),
            np.zeros(2),
            equalities=LinearConstraints(np.array([[1.0, 1.0]]), np.array([1.0])),
        )
        normalized, scales = normalize_problem(problem)
        assert scales.objective_scale == 1.0
        assert normalized.objective([1, 0]) == 0.0

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_constraint_residual_sign_preserved(self, seed):
        instance = generate_qkp(10, 0.5, rng=seed)
        encoded = encode_with_slacks(instance.to_problem())
        normalized, scales = normalize_problem(encoded.problem)
        rng = np.random.default_rng(seed)
        x = (rng.uniform(0, 1, size=encoded.problem.num_variables) < 0.5).astype(int)
        raw = encoded.problem.equalities.residuals(x)
        scaled = normalized.equalities.residuals(x)
        np.testing.assert_allclose(scaled * scales.constraint_scales, raw, atol=1e-9)
