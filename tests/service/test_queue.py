"""Unit tests for the bounded priority queue (repro.service.queue)."""

import threading

import pytest

from repro.service.queue import (
    PriorityJobQueue,
    QueueClosedError,
    QueueFullError,
    resolve_priority,
)


class TestOrdering:
    def test_priority_classes_dequeue_high_first(self):
        queue = PriorityJobQueue(high_water=10)
        queue.put("slow", priority="low")
        queue.put("fast", priority="high")
        queue.put("mid", priority="normal")
        assert [queue.get(), queue.get(), queue.get()] == [
            "fast", "mid", "slow"
        ]

    def test_fifo_within_priority_class(self):
        queue = PriorityJobQueue(high_water=10)
        for index in range(5):
            queue.put(index, priority="normal")
        assert [queue.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_priority_names_and_ints_interchangeable(self):
        assert resolve_priority("high") == 0
        assert resolve_priority("normal") == 1
        assert resolve_priority("low") == 2
        assert resolve_priority(7) == 7
        with pytest.raises(ValueError, match="unknown priority"):
            resolve_priority("urgent")


class TestBackpressure:
    def test_put_above_high_water_rejects_not_blocks(self):
        queue = PriorityJobQueue(high_water=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFullError) as excinfo:
            queue.put("c")
        assert excinfo.value.depth == 2
        assert excinfo.value.high_water == 2
        assert queue.num_rejected == 1
        # The queue itself is unharmed: drain one, admit one.
        assert queue.get() == "a"
        queue.put("c")
        assert queue.depth == 2

    def test_counters(self):
        queue = PriorityJobQueue(high_water=3)
        queue.put("a")
        queue.put("b")
        queue.get()
        assert queue.num_enqueued == 2
        assert queue.num_dequeued == 1
        assert queue.depth == 1


class TestLifecycle:
    def test_get_times_out(self):
        queue = PriorityJobQueue()
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.02)

    def test_close_wakes_blocked_getter(self):
        queue = PriorityJobQueue()
        outcome = {}

        def getter():
            try:
                queue.get(timeout=5.0)
            except QueueClosedError:
                outcome["closed"] = True

        thread = threading.Thread(target=getter)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert outcome.get("closed") is True

    def test_closed_queue_rejects_put(self):
        queue = PriorityJobQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put("late")

    def test_close_drains_remaining_items_first(self):
        queue = PriorityJobQueue()
        queue.put("pending")
        queue.close()
        assert queue.get() == "pending"
        with pytest.raises(QueueClosedError):
            queue.get()

    def test_invalid_high_water(self):
        with pytest.raises(ValueError, match="high_water"):
            PriorityJobQueue(high_water=0)
