"""End-to-end HTTP tests against a live SolverService on an ephemeral port.

These drive the real stack — stdlib ``urllib`` client, threading HTTP
server, priority queue, persistent workers — and pin the service's three
headline contracts: bit-identity with in-process ``repro.solve``, warm
program residency across requests, and structured (never-hanging)
backpressure.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.ising._lockstep import AnnealProgram
from repro.problems.generators import generate_qkp
from repro.runtime import SolveJob
from repro.service import SolverService
from repro.service.codec import job_to_wire, report_from_wire, report_to_wire

FAST = dict(num_iterations=10, mcs_per_run=60)


def http_json(base, path, payload=None, timeout=60.0):
    """POST (payload given) or GET; returns (status, decoded body)."""
    url = base + path
    if payload is None:
        request = urllib.request.Request(url)
    else:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_json_headers(base, path, payload=None, timeout=60.0):
    """Like :func:`http_json`, but also returns the response headers."""
    url = base + path
    if payload is None:
        request = urllib.request.Request(url)
    else:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def wire_job(instance, seed, **kwargs):
    return job_to_wire(
        SolveJob(instance, rng=seed, config_overrides=dict(FAST)), **kwargs
    )


@pytest.fixture
def service():
    with SolverService(port=0, num_workers=1) as live:
        host, port = live.address
        yield live, f"http://{host}:{port}"


class TestSolveEndpoint:
    def test_sync_solve_bit_identical_to_in_process(self, service):
        _, base = service
        instance = generate_qkp(16, 0.5, rng=8)
        status, body = http_json(base, "/v1/solve", wire_job(instance, 21))
        assert status == 200
        assert body["status"] == "done"
        served = report_from_wire(body["report"])
        direct = repro.solve(instance, rng=21, **FAST)
        assert served == direct
        assert np.array_equal(served.best_x, direct.best_x)
        assert body["timing"]["solve_seconds"] > 0
        assert body["worker"] == 0

    def test_concurrent_clients_each_bit_identical(self, service):
        _, base = service
        instances = {seed: generate_qkp(14, 0.5, rng=seed)
                     for seed in range(6)}
        results = {}

        def client(seed):
            status, body = http_json(
                base, "/v1/solve", wire_job(instances[seed], seed * 13)
            )
            results[seed] = (status, body)

        threads = [threading.Thread(target=client, args=(seed,))
                   for seed in instances]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == len(instances)
        for seed, (status, body) in results.items():
            assert status == 200, body
            direct = repro.solve(instances[seed], rng=seed * 13, **FAST)
            assert report_from_wire(body["report"]) == direct

    def test_repeat_request_hits_warm_program_cache(self, service, monkeypatch):
        _, base = service
        instance = generate_qkp(16, 0.5, rng=8)
        calls = {"count": 0}
        original = AnnealProgram.__init__

        def counting_init(self, coupling, dtype=None):
            calls["count"] += 1
            original(self, coupling, dtype=dtype)

        monkeypatch.setattr(AnnealProgram, "__init__", counting_init)
        first = http_json(base, "/v1/solve", wire_job(instance, 1))[1]
        second = http_json(base, "/v1/solve", wire_job(instance, 2))[1]
        assert first["cache"]["cold_starts"] == 1
        assert second["cache"]["warm_hits"] == 1
        # The O(N^2) program build ran exactly once across both requests.
        assert calls["count"] == 1

    def test_warm_repeat_same_seed_stays_bit_identical(self, service):
        _, base = service
        instance = generate_qkp(16, 0.5, rng=8)
        first = http_json(base, "/v1/solve", wire_job(instance, 33))[1]
        second = http_json(base, "/v1/solve", wire_job(instance, 33))[1]
        assert second["cache"]["warm_hits"] >= 1
        assert (report_from_wire(second["report"])
                == report_from_wire(first["report"]))

    def test_malformed_body_is_400(self, service):
        _, base = service
        status, body = http_json(base, "/v1/solve", {"method": "saim"})
        assert status == 400
        assert body["error"]["type"] == "bad_request"
        assert "problem" in body["error"]["message"]

    def test_unknown_route_is_404(self, service):
        _, base = service
        assert http_json(base, "/v1/nope", {})[0] == 404
        assert http_json(base, "/v1/nope")[0] == 404


class TestAsyncJobs:
    def test_async_submit_then_poll(self, service):
        _, base = service
        instance = generate_qkp(14, 0.5, rng=8)
        payload = wire_job(instance, 5)
        payload["mode"] = "async"
        status, accepted = http_json(base, "/v1/solve", payload)
        assert status == 202
        assert accepted["href"] == f"/v1/jobs/{accepted['id']}"
        deadline = 60
        while True:
            status, body = http_json(base, accepted["href"])
            if body.get("status") in ("done", "failed"):
                break
            deadline -= 1
            assert deadline > 0, "async job never finished"
            time.sleep(0.1)  # a loaded 1-CPU host can outrun a bare poll loop
        assert status == 200
        assert (report_from_wire(body["report"])
                == repro.solve(instance, rng=5, **FAST))

    def test_unknown_job_is_404(self, service):
        _, base = service
        status, body = http_json(base, "/v1/jobs/deadbeef")
        assert status == 404
        assert body["error"]["type"] == "unknown_job"

    def test_failed_job_is_500_with_traceback(self, service):
        _, base = service
        payload = wire_job(generate_qkp(10, 0.5, rng=8), 5)
        payload["method_options"] = {"no_such_option": 1}
        status, body = http_json(base, "/v1/solve", payload)
        assert status == 500
        assert body["status"] == "failed"
        assert body["error"]["traceback"]


class TestBackpressure:
    def test_429_with_structured_payload_not_a_hang(self):
        instance = generate_qkp(12, 0.5, rng=8)
        with SolverService(port=0, num_workers=1, queue_depth=2) as live:
            host, port = live.address
            base = f"http://{host}:{port}"
            live.pool.pause()
            accepted = []
            rejection = None
            rejection_headers = None
            for seed in range(10):
                payload = wire_job(instance, seed)
                payload["mode"] = "async"
                status, body, headers = http_json_headers(
                    base, "/v1/solve", payload, timeout=10.0
                )
                if status == 429:
                    rejection = body
                    rejection_headers = headers
                    break
                assert status == 202
                accepted.append(body["id"])
            assert rejection is not None, "queue never filled"
            assert rejection["error"]["type"] == "queue_full"
            assert rejection["error"]["high_water"] == 2
            assert rejection["error"]["depth"] == 2
            assert rejection["error"]["retry"] is True
            # The JSON retry hint is mirrored as a real Retry-After header
            # (an integer number of seconds, always >= 1).
            retry_after = rejection_headers.get("Retry-After")
            assert retry_after is not None
            assert int(retry_after) >= 1
            stats = http_json(base, "/v1/stats")[1]
            assert stats["paused"] is True
            assert stats["queue"]["rejected"] >= 1
            live.pool.resume()
            for job_id in accepted:
                deadline = 120
                while True:
                    body = http_json(base, f"/v1/jobs/{job_id}")[1]
                    if body.get("status") in ("done", "failed"):
                        break
                    deadline -= 1
                    assert deadline > 0
                assert body["status"] == "done"


class TestAutoMethod:
    """``method="auto"`` through the service: plan survives the wire."""

    def test_auto_solve_round_trips_with_plan(self, service):
        _, base = service
        instance = generate_qkp(16, 0.5, rng=8)
        payload = job_to_wire(SolveJob(
            instance, method="auto", rng=21, config_overrides=dict(FAST),
        ))
        status, body = http_json(base, "/v1/solve", payload)
        assert status == 200, body
        wire = body["report"]
        # The audit trail survives the wire verbatim.
        assert wire["plan"] is not None
        assert wire["plan"]["plan"]["backend"] == wire["backend"]
        assert wire["plan"]["prediction"]["source"] in (
            "model", "heuristic")
        served = report_from_wire(wire)
        assert served.method == "auto"
        assert served.detail["plan"] == wire["plan"]["plan"]
        # Canonical codec: decode then re-encode reproduces the wire form.
        assert report_to_wire(served) == wire
        # Bit-identity with the in-process front door (no model in the
        # hermetic test env, so auto == saim on the same seed).
        direct = repro.solve(instance, method="auto", rng=21, **FAST)
        assert np.array_equal(served.best_x, direct.best_x)
        assert served.best_cost == direct.best_cost
        stats = http_json(base, "/v1/stats")[1]
        assert stats["jobs_planned"] == 1

    def test_non_auto_report_has_null_plan(self, service):
        _, base = service
        instance = generate_qkp(14, 0.5, rng=8)
        status, body = http_json(base, "/v1/solve", wire_job(instance, 3))
        assert status == 200
        assert body["report"]["plan"] is None
        stats = http_json(base, "/v1/stats")[1]
        assert stats["jobs_planned"] == 0


class TestObservability:
    def test_health(self, service):
        _, base = service
        status, body = http_json(base, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == repro.__version__
        assert body["workers"] == 1
        assert body["mode"] == "thread"

    def test_stats_exposes_queue_and_worker_caches(self, service):
        _, base = service
        instance = generate_qkp(14, 0.5, rng=8)
        http_json(base, "/v1/solve", wire_job(instance, 1))
        http_json(base, "/v1/solve", wire_job(instance, 2))
        status, stats = http_json(base, "/v1/stats")
        assert status == 200
        assert stats["jobs_done"] == 2
        assert stats["jobs_per_second"] > 0
        assert stats["queue"]["enqueued"] == 2
        assert stats["queue"]["dequeued"] == 2
        worker = stats["workers"][0]
        assert worker["cold_starts"] == 1
        assert worker["warm_hits"] == 1
        assert worker["program_entries"] == 1
