"""Wire-codec tests: jobs and reports through JSON, deterministically."""

import json

import numpy as np
import pytest

import repro
from repro.core.saim import SaimConfig
from repro.problems.generators import generate_mkp, generate_qkp
from repro.runtime import SolveJob
from repro.service.codec import (
    CodecError,
    job_from_wire,
    job_to_wire,
    report_from_wire,
    report_to_wire,
)

FAST = dict(num_iterations=8, mcs_per_run=50)


def json_cycle(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestJobWire:
    def test_roundtrip_is_canonical(self):
        """job_to_wire(job_from_wire(w)) == w: the determinism contract."""
        job = SolveJob(
            generate_qkp(10, 0.5, rng=1), method="saim", backend="quantized",
            config=SaimConfig(num_iterations=20, mcs_per_run=100),
            num_replicas=4, aggregate="best", restart="warm", rng=7,
            backend_options={"bits": 6}, config_overrides={"eta": 5.0},
            tag="wire-test",
        )
        wire = job_to_wire(job, warm_start=True)
        decoded, warm = job_from_wire(json_cycle(wire))
        assert warm is True
        assert job_to_wire(decoded, warm_start=warm) == wire

    def test_identical_jobs_identical_bytes(self):
        job = SolveJob(generate_mkp(8, 2, rng=3), rng=11)
        first = json.dumps(job_to_wire(job), sort_keys=True)
        second = json.dumps(job_to_wire(job), sort_keys=True)
        assert first == second

    def test_defaults_fill_missing_keys(self):
        wire = {"problem": repro.problems.problem_to_json(
            generate_qkp(6, 0.5, rng=2))}
        job, warm = job_from_wire(wire)
        assert job.method == "saim"
        assert job.backend is None
        assert job.num_replicas == 1
        assert warm is False

    def test_unknown_keys_rejected(self):
        wire = job_to_wire(SolveJob(generate_qkp(6, 0.5, rng=2)))
        wire["tempreature"] = 3.0
        with pytest.raises(CodecError, match="tempreature"):
            job_from_wire(wire)

    def test_missing_problem_rejected(self):
        with pytest.raises(CodecError, match="problem"):
            job_from_wire({"method": "saim"})

    def test_generator_rng_rejected(self):
        job = SolveJob(generate_qkp(6, 0.5, rng=2),
                       rng=np.random.default_rng(3))
        with pytest.raises(CodecError, match="integer seed"):
            job_to_wire(job)

    def test_unknown_config_field_rejected(self):
        wire = job_to_wire(SolveJob(generate_qkp(6, 0.5, rng=2)))
        wire["config"] = {"num_iterations": 5, "temperature": 2.0}
        with pytest.raises(CodecError, match="temperature"):
            job_from_wire(wire)

    def test_initial_lambdas_travel_exactly(self):
        lambdas = np.array([0.25, 1.5, 3.125])
        job = SolveJob(generate_mkp(8, 3, rng=1), initial_lambdas=lambdas)
        decoded, _ = job_from_wire(json_cycle(job_to_wire(job)))
        assert np.array_equal(decoded.initial_lambdas, lambdas)
        assert decoded.initial_lambdas.dtype == lambdas.dtype


class TestReportWire:
    def test_roundtrip_preserves_equality(self):
        instance = generate_qkp(14, 0.5, rng=4)
        report = repro.solve(instance, rng=9, **FAST)
        decoded = report_from_wire(json_cycle(report_to_wire(report)))
        assert decoded == report  # SolveReport.__eq__ covers best_x too
        assert np.array_equal(decoded.best_x, report.best_x)

    def test_roundtrip_is_canonical(self):
        instance = generate_qkp(14, 0.5, rng=4)
        wire = report_to_wire(repro.solve(instance, rng=9, **FAST))
        assert report_to_wire(report_from_wire(json_cycle(wire))) == wire

    def test_final_lambdas_cross_the_wire(self):
        instance = generate_mkp(10, 3, rng=5)
        report = repro.solve(instance, rng=2, **FAST)
        decoded = report_from_wire(json_cycle(report_to_wire(report)))
        assert np.array_equal(decoded.final_lambdas,
                              report.detail.final_lambdas)

    def test_non_finite_cost_travels_as_string(self):
        from repro.core.report import SolveReport

        report = SolveReport(
            method="saim", backend="pbit", best_x=None,
            best_cost=float("inf"), feasible=False, num_iterations=3,
        )
        wire = json_cycle(report_to_wire(report))
        assert wire["best_cost"] == "inf"
        assert report_from_wire(wire).best_cost == float("inf")
