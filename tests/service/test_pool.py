"""Worker-pool tests: residency, bit-identity, backpressure, logging."""

import io
import json

import numpy as np
import pytest

import repro
from repro.ising._lockstep import AnnealProgram
from repro.ising.pbit import PBitMachine
from repro.problems.generators import generate_qkp
from repro.runtime import SolveJob
from repro.service.codec import job_to_wire
from repro.service.log import RequestLogger
from repro.service.pool import ProgramCache, ServicePool, WorkerRuntime
from repro.service.queue import QueueFullError
from tests.helpers import random_ising

FAST = dict(num_iterations=10, mcs_per_run=60)


def wire_job(instance, seed, *, warm_start=False, **kwargs):
    job = SolveJob(instance, rng=seed, config_overrides=dict(FAST), **kwargs)
    return job_to_wire(job, warm_start=warm_start)


def counting_program(monkeypatch):
    """Spy on AnnealProgram constructions (tests/ising idiom)."""
    calls = {"count": 0}
    original = AnnealProgram.__init__

    def counting_init(self, coupling, dtype=None):
        calls["count"] += 1
        original(self, coupling, dtype=dtype)

    monkeypatch.setattr(AnnealProgram, "__init__", counting_init)
    return calls


class TestProgramCache:
    def test_cold_then_warm(self):
        cache = ProgramCache()
        model = random_ising(12, rng=0)
        first = PBitMachine(model)
        assert cache.bind(first) is False
        assert cache.cold_starts == 1
        second = PBitMachine(model)
        assert cache.bind(second) is True
        assert cache.warm_hits == 1
        # Adoption shares the prepared program object outright.
        assert second.program is first.program

    def test_adoption_builds_no_new_program(self, monkeypatch):
        cache = ProgramCache()
        model = random_ising(12, rng=0)
        calls = counting_program(monkeypatch)
        cache.bind(PBitMachine(model))
        cache.bind(PBitMachine(model))
        cache.bind(PBitMachine(model))
        assert calls["count"] == 1

    def test_serial_kernel_skipped(self):
        model = random_ising(12, rng=0)
        cache = ProgramCache()
        assert cache.bind(PBitMachine(model, kernel="serial")) is False
        assert cache.cold_starts == 0

    def test_lru_eviction(self):
        cache = ProgramCache(max_entries=1)
        model_a = random_ising(10, rng=1)
        model_b = random_ising(10, rng=2)
        cache.bind(PBitMachine(model_a))
        cache.bind(PBitMachine(model_b))
        assert cache.evictions == 1
        assert cache.bind(PBitMachine(model_a)) is False  # evicted: cold again

    def test_adopt_program_rejects_mismatches(self):
        model_a = random_ising(10, rng=1)
        model_b = random_ising(10, rng=2)
        program = PBitMachine(model_a).program
        with pytest.raises(ValueError, match="coupling"):
            PBitMachine(model_b).adopt_program(program)
        with pytest.raises(ValueError, match="dtype"):
            PBitMachine(model_a, dtype=np.float32).adopt_program(program)


class TestWorkerRuntime:
    def test_bit_identity_with_front_door(self):
        instance = generate_qkp(16, 0.5, rng=3)
        runtime = WorkerRuntime()
        response = runtime.execute(wire_job(instance, 42))
        assert response["ok"], response.get("error")
        from repro.service.codec import report_from_wire

        served = report_from_wire(response["report"])
        direct = repro.solve(instance, rng=42, **FAST)
        assert served == direct
        assert np.array_equal(served.best_x, direct.best_x)

    def test_warm_repeat_stays_bit_identical(self):
        """The residency contract: a warm-cache hit changes nothing."""
        instance = generate_qkp(16, 0.5, rng=3)
        runtime = WorkerRuntime()
        first = runtime.execute(wire_job(instance, 42))
        second = runtime.execute(wire_job(instance, 42))
        assert second["stats"]["warm_hits"] >= 1
        from repro.service.codec import report_from_wire

        # Wire dicts differ only in wall_seconds; report equality is the
        # contract (identity fields + best_x).
        assert (report_from_wire(second["report"])
                == report_from_wire(first["report"]))

    def test_program_built_once_across_requests(self, monkeypatch):
        instance = generate_qkp(16, 0.5, rng=3)
        runtime = WorkerRuntime()
        calls = counting_program(monkeypatch)
        for seed in (1, 2, 3):
            assert runtime.execute(wire_job(instance, seed))["ok"]
        assert calls["count"] == 1
        assert runtime.stats()["warm_hits"] == 2
        assert runtime.stats()["cold_starts"] == 1

    def test_warm_start_resumes_session_lambdas(self):
        instance = generate_qkp(16, 0.5, rng=3)
        runtime = WorkerRuntime()
        runtime.execute(wire_job(instance, 1))
        response = runtime.execute(wire_job(instance, 2, warm_start=True))
        assert response["ok"]
        assert response["warm_start"] is True
        stats = runtime.stats()
        assert stats["session_warm_starts"] == 1
        assert stats["lambda_entries"] >= 1

    def test_warm_start_conflicts_are_errors(self):
        instance = generate_qkp(10, 0.5, rng=3)
        runtime = WorkerRuntime()
        bad = wire_job(instance, 1, warm_start=True,
                       initial_lambdas=np.array([1.0]))
        response = runtime.execute(bad)
        assert not response["ok"]
        assert "mutually exclusive" in response["error"]["message"]
        bad = wire_job(instance, 1, warm_start=True, restart="warm")
        response = runtime.execute(bad)
        assert not response["ok"]
        assert "restart='random'" in response["error"]["message"]

    def test_client_program_cache_rejected(self):
        instance = generate_qkp(10, 0.5, rng=3)
        runtime = WorkerRuntime()
        payload = wire_job(instance, 1)
        payload["backend_options"] = {"program_cache": "mine"}
        response = runtime.execute(payload)
        assert not response["ok"]
        assert "service-managed" in response["error"]["message"]

    def test_solver_errors_travel_as_data(self):
        runtime = WorkerRuntime()
        payload = wire_job(generate_qkp(10, 0.5, rng=3), 1)
        payload["method"] = "not-a-method"
        response = runtime.execute(payload)
        assert not response["ok"]
        assert response["error"]["type"]
        assert "not-a-method" in response["error"]["message"]
        assert runtime.stats()["errors"] == 1


class TestServicePool:
    def test_submit_and_report_bit_identical(self):
        instance = generate_qkp(16, 0.5, rng=5)
        with ServicePool(num_workers=1) as pool:
            handle = pool.solve_payload(wire_job(instance, 7), timeout=60)
        assert handle.status == "done"
        assert handle.report() == repro.solve(instance, rng=7, **FAST)

    def test_process_mode_bit_identical(self):
        instance = generate_qkp(16, 0.5, rng=5)
        with ServicePool(num_workers=1, mode="process") as pool:
            first = pool.solve_payload(wire_job(instance, 7), timeout=120)
            second = pool.solve_payload(wire_job(instance, 7), timeout=120)
        assert first.report() == repro.solve(instance, rng=7, **FAST)
        # Residency survives in the long-lived child process.
        assert second.response["stats"]["warm_hits"] >= 1
        assert second.report() == first.report()

    def test_backpressure_rejects_above_high_water(self):
        instance = generate_qkp(10, 0.5, rng=5)
        with ServicePool(num_workers=1, queue_depth=2) as pool:
            pool.pause()
            held = []
            with pytest.raises(QueueFullError) as excinfo:
                for seed in range(10):
                    held.append(pool.submit(wire_job(instance, seed)))
            assert excinfo.value.high_water == 2
            # Pause may hold one dequeued job beyond the queued two.
            assert 2 <= len(held) <= 3
            pool.resume()
            for handle in held:
                assert handle.wait(60)
                assert handle.status == "done"

    def test_malformed_payload_never_enqueued(self):
        with ServicePool(num_workers=1) as pool:
            with pytest.raises(Exception, match="problem"):
                pool.submit({"method": "saim"})
            assert pool.queue.num_enqueued == 0

    def test_stats_shape(self):
        instance = generate_qkp(10, 0.5, rng=5)
        with ServicePool(num_workers=2) as pool:
            pool.solve_payload(wire_job(instance, 1), timeout=60)
            stats = pool.stats()
        assert stats["jobs_done"] == 1
        assert stats["queue"]["enqueued"] == 1
        assert stats["queue"]["rejected"] == 0
        assert len(stats["workers"]) == 2
        assert {"id", "mode"} <= set(stats["workers"][0])

    def test_one_log_line_per_request_including_rejected(self):
        instance = generate_qkp(10, 0.5, rng=5)
        stream = io.StringIO()
        logger = RequestLogger(stream)
        with ServicePool(num_workers=1, queue_depth=1,
                         logger=logger) as pool:
            pool.solve_payload(wire_job(instance, 1), timeout=60)
            pool.pause()
            submitted = [pool.submit(wire_job(instance, 2))]
            with pytest.raises(QueueFullError):
                for seed in range(3, 10):
                    submitted.append(pool.submit(wire_job(instance, seed)))
            pool.resume()
            for handle in submitted:
                assert handle.wait(60)
        lines = [json.loads(line) for line in
                 stream.getvalue().splitlines()]
        assert len(lines) == len(submitted) + 2  # done jobs + one rejection
        statuses = [line["status"] for line in lines]
        assert statuses.count("rejected") == 1
        assert statuses.count("ok") == len(submitted) + 1
        for line in lines:
            assert line["event"] == "solve"
            assert "id" in line and "priority" in line

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="num_workers"):
            ServicePool(num_workers=0)
        with pytest.raises(ValueError, match="mode"):
            ServicePool(mode="greenlet")
