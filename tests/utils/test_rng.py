"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(5)).integers(0, 1000)
        b = ensure_rng(5).integers(0, 1000)
        assert a == b

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        streams = spawn_rngs(3, 4)
        draws = [g.integers(0, 10**9) for g in streams]
        assert len(set(draws)) == len(draws)

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        streams = spawn_rngs(gen, 3)
        assert len(streams) == 3
        assert all(isinstance(s, np.random.Generator) for s in streams)

    def test_cross_platform_stream_pins(self):
        """Spawned streams are a *wire format*: the fused fleet path and
        ``fleet_jobs``-seeded process jobs both derive instance ``b``'s
        noise from ``spawn_rngs(seed, B)[b]``, so these exact draws are
        part of the reproducibility contract.  numpy pins SeedSequence
        spawning and PCG64 output across platforms; if this test ever
        fails, archived fleet results are no longer re-derivable from
        their seeds."""
        ints = [
            int(g.integers(0, 2**63)) for g in spawn_rngs(2026, 4)
        ]
        assert ints == [
            3529703102724994386,
            6189923161561904955,
            5080641087360007551,
            6856047134440132065,
        ]
        floats = [float(g.uniform(-1, 1)) for g in spawn_rngs(2026, 4)]
        np.testing.assert_allclose(
            floats,
            [
                -0.23461764555934717,
                0.3422256278567517,
                0.10168842090696706,
                0.4866682395646016,
            ],
            rtol=0, atol=0,
        )

    def test_seed_and_seedsequence_spawn_identically(self):
        """An int seed and its SeedSequence wrap must yield the same
        children — both spellings appear in job-seeding code."""
        a = [g.integers(0, 10**9) for g in spawn_rngs(5, 3)]
        b = [
            g.integers(0, 10**9)
            for g in spawn_rngs(np.random.SeedSequence(5), 3)
        ]
        assert a == b
