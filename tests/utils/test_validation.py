"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_vector,
    check_non_negative,
    check_positive,
    check_square_symmetric,
)


class TestBinaryVector:
    def test_accepts_zeros_and_ones(self):
        out = check_binary_vector([0, 1, 1, 0])
        assert out.dtype == np.int8

    def test_rejects_twos(self):
        with pytest.raises(ValueError, match="binary"):
            check_binary_vector([0, 1, 2])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            check_binary_vector([0, 1], n=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            check_binary_vector(np.zeros((2, 2)))

    def test_accepts_all_zeros(self):
        assert check_binary_vector(np.zeros(4)).sum() == 0

    def test_accepts_bool_array(self):
        out = check_binary_vector(np.array([True, False]))
        np.testing.assert_array_equal(out, [1, 0])


class TestSquareSymmetric:
    def test_accepts_symmetric(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_array_equal(check_square_symmetric(m), m)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square_symmetric(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            check_square_symmetric(np.array([[0.0, 1.0], [2.0, 0.0]]))


class TestScalars:
    def test_positive_ok(self):
        assert check_positive(2.0, "p") == 2.0

    def test_zero_not_positive(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "p")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "p") == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "p")
