"""Tests for repro.utils.binary (slack decomposition arithmetic)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.binary import (
    binary_decomposition_width,
    binary_weights,
    decompose_integer,
    recompose_integer,
)


class TestWidth:
    def test_zero_bound_needs_no_bits(self):
        assert binary_decomposition_width(0) == 0

    def test_one(self):
        assert binary_decomposition_width(1) == 1

    @pytest.mark.parametrize(
        "bound,expected",
        [(2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (42, 6), (1023, 10), (1024, 11)],
    )
    def test_paper_rule(self, bound, expected):
        # Q = floor(log2(b)) + 1 per Section IV-A
        assert binary_decomposition_width(bound) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            binary_decomposition_width(-1)


class TestWeights:
    def test_powers_of_two(self):
        np.testing.assert_array_equal(binary_weights(5), [1, 2, 4])

    def test_zero_bound_gives_empty(self):
        assert binary_weights(0).size == 0

    @given(st.integers(min_value=1, max_value=10**6))
    def test_weights_cover_bound(self, bound):
        # The encoding must be able to represent every slack value up to bound.
        assert binary_weights(bound).sum() >= bound


class TestDecompose:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        bits = decompose_integer(value, 16)
        assert recompose_integer(bits) == value

    def test_exact_width_required(self):
        with pytest.raises(ValueError):
            decompose_integer(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            decompose_integer(-1, 4)

    def test_empty_bits_are_zero(self):
        assert recompose_integer(np.array([])) == 0

    def test_lsb_first(self):
        np.testing.assert_array_equal(decompose_integer(6, 3), [0, 1, 1])
