"""Tests for the exact MILP wrapper (repro.baselines.milp)."""

import numpy as np
import pytest

from repro.baselines.milp import mkp_lp_bound, solve_mkp_exact
from repro.problems.generators import generate_mkp
from repro.problems.mkp import MkpInstance
from tests.helpers import all_binary_vectors


class TestSolveMkpExact:
    def test_matches_brute_force(self):
        instance = generate_mkp(12, 3, rng=0)
        exact = solve_mkp_exact(instance)
        best = 0.0
        for x in all_binary_vectors(12):
            if instance.is_feasible(x):
                best = max(best, instance.profit(x))
        assert exact.profit == pytest.approx(best)

    def test_solution_is_feasible(self):
        instance = generate_mkp(30, 5, rng=1)
        exact = solve_mkp_exact(instance)
        assert instance.is_feasible(exact.x)
        assert exact.profit == pytest.approx(instance.profit(exact.x))

    def test_records_time(self):
        instance = generate_mkp(20, 3, rng=2)
        exact = solve_mkp_exact(instance)
        assert exact.solve_seconds > 0

    def test_trivial_instance(self):
        # Capacity fits everything: optimum takes all items.
        instance = MkpInstance(
            values=np.array([1.0, 2.0, 3.0]),
            weights=np.ones((1, 3)),
            capacities=np.array([100.0]),
        )
        exact = solve_mkp_exact(instance)
        assert exact.profit == pytest.approx(6.0)

    def test_zero_capacity(self):
        instance = MkpInstance(
            values=np.array([1.0, 2.0]),
            weights=np.ones((1, 2)),
            capacities=np.array([0.0]),
        )
        exact = solve_mkp_exact(instance)
        assert exact.profit == 0.0
        assert exact.x.sum() == 0


class TestLpBound:
    def test_bound_dominates_integer_optimum(self):
        instance = generate_mkp(15, 3, rng=3)
        exact = solve_mkp_exact(instance)
        assert mkp_lp_bound(instance) >= exact.profit - 1e-6

    def test_bound_is_tight_for_loose_capacity(self):
        instance = MkpInstance(
            values=np.array([5.0, 7.0]),
            weights=np.ones((1, 2)),
            capacities=np.array([10.0]),
        )
        assert mkp_lp_bound(instance) == pytest.approx(12.0)
