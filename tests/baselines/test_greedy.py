"""Tests for greedy/repair/improve heuristics (repro.baselines.greedy)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact_qkp import exact_qkp_bruteforce
from repro.baselines.greedy import (
    greedy_mkp,
    greedy_qkp,
    local_improve_mkp,
    local_improve_qkp,
    repair_mkp,
    repair_qkp,
)
from repro.problems.generators import generate_mkp, generate_qkp


class TestGreedyQkp:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_feasible(self, seed):
        instance = generate_qkp(30, 0.5, rng=seed)
        assert instance.is_feasible(greedy_qkp(instance))

    def test_nonzero_profit_when_possible(self):
        instance = generate_qkp(20, 0.5, rng=1)
        assert instance.profit(greedy_qkp(instance)) > 0

    def test_near_optimal_on_small_instances(self):
        instance = generate_qkp(14, 0.6, rng=2)
        _, opt = exact_qkp_bruteforce(instance)
        x = local_improve_qkp(instance, greedy_qkp(instance))
        assert instance.profit(x) >= 0.85 * opt


class TestRepairQkp:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_repairs_anything(self, seed):
        rng = np.random.default_rng(seed)
        instance = generate_qkp(20, 0.5, rng=seed)
        raw = (rng.uniform(0, 1, 20) < 0.8).astype(np.int8)
        repaired = repair_qkp(instance, raw)
        assert instance.is_feasible(repaired)

    def test_feasible_input_untouched(self):
        instance = generate_qkp(15, 0.5, rng=3)
        x = greedy_qkp(instance)
        np.testing.assert_array_equal(repair_qkp(instance, x), x)

    def test_only_removes_items(self):
        instance = generate_qkp(15, 0.5, rng=4)
        raw = np.ones(15, dtype=np.int8)
        repaired = repair_qkp(instance, raw)
        assert np.all(repaired <= raw)


class TestLocalImproveQkp:
    def test_never_degrades(self):
        instance = generate_qkp(25, 0.5, rng=5)
        start = greedy_qkp(instance)
        improved = local_improve_qkp(instance, start)
        assert instance.profit(improved) >= instance.profit(start) - 1e-9
        assert instance.is_feasible(improved)

    def test_handles_infeasible_start(self):
        instance = generate_qkp(15, 0.5, rng=6)
        improved = local_improve_qkp(instance, np.ones(15, dtype=np.int8))
        assert instance.is_feasible(improved)


class TestGreedyMkp:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_feasible(self, seed):
        instance = generate_mkp(30, 5, rng=seed)
        assert instance.is_feasible(greedy_mkp(instance))

    def test_collects_value(self):
        instance = generate_mkp(30, 5, rng=0)
        assert instance.profit(greedy_mkp(instance)) > 0


class TestRepairMkp:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_repairs_anything(self, seed):
        rng = np.random.default_rng(seed)
        instance = generate_mkp(25, 4, rng=seed)
        raw = (rng.uniform(0, 1, 25) < 0.9).astype(np.int8)
        assert instance.is_feasible(repair_mkp(instance, raw))

    def test_refill_fills_spare_capacity(self):
        instance = generate_mkp(25, 3, rng=1)
        empty = np.zeros(25, dtype=np.int8)
        refilled = repair_mkp(instance, empty)
        # Starting from nothing, the refill phase acts as a greedy fill.
        assert instance.profit(refilled) > 0


class TestLocalImproveMkp:
    def test_never_degrades(self):
        instance = generate_mkp(25, 4, rng=2)
        start = greedy_mkp(instance)
        improved = local_improve_mkp(instance, start)
        assert instance.profit(improved) >= instance.profit(start) - 1e-9
        assert instance.is_feasible(improved)

    def test_handles_infeasible_start(self):
        instance = generate_mkp(20, 3, rng=3)
        improved = local_improve_mkp(instance, np.ones(20, dtype=np.int8))
        assert instance.is_feasible(improved)
