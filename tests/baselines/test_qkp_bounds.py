"""Tests for QKP bounds and B&B (repro.baselines.qkp_bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exact_qkp import exact_qkp_bruteforce
from repro.baselines.qkp_bounds import (
    branch_and_bound_qkp,
    optimistic_profits,
    qkp_upper_bound,
)
from repro.problems.generators import generate_qkp


class TestOptimisticProfits:
    def test_upper_bounds_selection_profit(self):
        instance = generate_qkp(10, 0.6, rng=0)
        optimistic = optimistic_profits(instance)
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = (rng.uniform(0, 1, 10) < 0.5).astype(np.int8)
            assert instance.profit(x) <= optimistic @ x + 1e-9

    def test_no_pairs_equals_values(self):
        instance = generate_qkp(8, 0.0, rng=2)
        np.testing.assert_allclose(optimistic_profits(instance), instance.values)


class TestUpperBound:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_dominates_exact_optimum(self, seed):
        instance = generate_qkp(10, 0.5, rng=seed)
        _, optimum = exact_qkp_bruteforce(instance)
        assert qkp_upper_bound(instance) >= optimum - 1e-6

    def test_zero_capacity(self):
        instance = generate_qkp(8, 0.5, rng=3)
        squeezed = type(instance)(
            instance.values, instance.pair_values, instance.weights, capacity=0.0
        )
        assert qkp_upper_bound(squeezed) == 0.0


class TestBranchAndBoundQkp:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        instance = generate_qkp(12, 0.5, rng=seed)
        result = branch_and_bound_qkp(instance)
        _, exact = exact_qkp_bruteforce(instance)
        assert result.profit == pytest.approx(exact)

    def test_solution_is_feasible(self):
        instance = generate_qkp(14, 0.4, rng=20)
        result = branch_and_bound_qkp(instance)
        assert instance.is_feasible(result.x)
        assert instance.profit(result.x) == pytest.approx(result.profit)

    def test_search_statistics(self):
        instance = generate_qkp(10, 0.5, rng=21)
        result = branch_and_bound_qkp(instance)
        assert result.nodes_explored >= 1
        assert result.nodes_pruned >= 0

    def test_node_budget_enforced(self):
        instance = generate_qkp(25, 1.0, rng=22)
        with pytest.raises(RuntimeError, match="exceeded"):
            branch_and_bound_qkp(instance, max_nodes=5)

    def test_dense_instance(self):
        instance = generate_qkp(12, 1.0, rng=23)
        result = branch_and_bound_qkp(instance)
        _, exact = exact_qkp_bruteforce(instance)
        assert result.profit == pytest.approx(exact)
