"""Tests for the own B&B solver (repro.baselines.branch_and_bound)."""

import pytest

from repro.baselines.branch_and_bound import branch_and_bound_mkp
from repro.baselines.milp import solve_mkp_exact
from repro.problems.generators import generate_mkp


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_milp(self, seed):
        instance = generate_mkp(14, 3, rng=seed)
        bnb = branch_and_bound_mkp(instance)
        milp = solve_mkp_exact(instance)
        assert bnb.profit == pytest.approx(milp.profit)

    def test_solution_is_feasible(self):
        instance = generate_mkp(12, 2, rng=10)
        result = branch_and_bound_mkp(instance)
        assert instance.is_feasible(result.x)
        assert instance.profit(result.x) == pytest.approx(result.profit)

    def test_search_statistics(self):
        instance = generate_mkp(12, 3, rng=11)
        result = branch_and_bound_mkp(instance)
        assert result.nodes_explored >= 1
        assert 0 <= result.nodes_pruned <= result.nodes_explored

    def test_node_budget_enforced(self):
        instance = generate_mkp(40, 5, rng=12)
        with pytest.raises(RuntimeError, match="exceeded"):
            branch_and_bound_mkp(instance, max_nodes=2)

    def test_multiple_constraints(self):
        instance = generate_mkp(12, 5, rng=13)
        bnb = branch_and_bound_mkp(instance)
        milp = solve_mkp_exact(instance)
        assert bnb.profit == pytest.approx(milp.profit)
