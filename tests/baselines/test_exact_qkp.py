"""Tests for exact / reference QKP optima (repro.baselines.exact_qkp)."""

import pytest

from repro.baselines.exact_qkp import exact_qkp_bruteforce, reference_qkp_optimum
from repro.problems.generators import generate_qkp
from tests.helpers import all_binary_vectors


class TestBruteForce:
    def test_matches_direct_enumeration(self):
        instance = generate_qkp(10, 0.5, rng=0)
        x, profit = exact_qkp_bruteforce(instance)
        best = 0.0
        for candidate in all_binary_vectors(10):
            if instance.is_feasible(candidate):
                best = max(best, instance.profit(candidate))
        assert profit == pytest.approx(best)
        assert instance.is_feasible(x)
        assert instance.profit(x) == pytest.approx(profit)

    def test_size_limit(self):
        with pytest.raises(ValueError, match="brute force"):
            exact_qkp_bruteforce(generate_qkp(30, 0.5, rng=0))

    def test_tight_capacity(self):
        instance = generate_qkp(8, 0.5, rng=1)
        tight = type(instance)(
            instance.values,
            instance.pair_values,
            instance.weights,
            capacity=float(instance.weights.min()),
        )
        x, profit = exact_qkp_bruteforce(tight)
        assert x.sum() <= 1  # at most the single lightest item fits


class TestReferenceOptimum:
    def test_exact_for_small_instances(self):
        instance = generate_qkp(12, 0.5, rng=2)
        _, exact = exact_qkp_bruteforce(instance)
        assert reference_qkp_optimum(instance) == pytest.approx(exact)

    def test_reference_is_feasible_profit(self):
        instance = generate_qkp(40, 0.5, rng=3)
        reference = reference_qkp_optimum(instance, rng=0)
        assert reference > 0

    def test_more_restarts_never_hurt(self):
        instance = generate_qkp(40, 0.5, rng=4)
        few = reference_qkp_optimum(instance, num_restarts=2, rng=0)
        many = reference_qkp_optimum(instance, num_restarts=15, rng=0)
        assert many >= few - 1e-9

    def test_anneal_ensemble_member(self):
        instance = generate_qkp(30, 0.5, rng=5)
        reference = reference_qkp_optimum(instance, num_restarts=3, anneal_runs=5, rng=0)
        assert reference > 0

    def test_deterministic_given_seed(self):
        instance = generate_qkp(35, 0.5, rng=6)
        a = reference_qkp_optimum(instance, rng=9)
        b = reference_qkp_optimum(instance, rng=9)
        assert a == b
