"""Tests for the Chu–Beasley GA (repro.baselines.ga)."""

import numpy as np
import pytest

from repro.baselines.ga import GaConfig, GaResult, chu_beasley_ga
from repro.baselines.milp import solve_mkp_exact
from repro.problems.generators import generate_mkp

FAST = GaConfig(population_size=30, num_children=400)


class TestGaConfig:
    def test_defaults_follow_chu_beasley(self):
        config = GaConfig()
        assert config.population_size == 100
        assert config.mutation_bits == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 2},
            {"num_children": 0},
            {"mutation_bits": -1},
            {"tournament_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GaConfig(**kwargs)


class TestChuBeasleyGa:
    def test_solution_is_feasible(self):
        instance = generate_mkp(25, 3, rng=0)
        result = chu_beasley_ga(instance, FAST, rng=0)
        assert instance.is_feasible(result.best_x)
        assert result.best_profit == pytest.approx(instance.profit(result.best_x))

    def test_history_is_monotone(self):
        instance = generate_mkp(25, 3, rng=1)
        result = chu_beasley_ga(instance, FAST, rng=1)
        assert np.all(np.diff(result.profit_history) >= 0)

    def test_near_optimal_on_small_instances(self):
        instance = generate_mkp(20, 3, rng=2)
        exact = solve_mkp_exact(instance)
        result = chu_beasley_ga(instance, FAST, rng=2)
        assert result.best_profit >= 0.95 * exact.profit

    def test_deterministic_given_seed(self):
        instance = generate_mkp(15, 2, rng=3)
        a = chu_beasley_ga(instance, FAST, rng=5)
        b = chu_beasley_ga(instance, FAST, rng=5)
        assert a.best_profit == b.best_profit

    def test_default_config_used_when_none(self):
        instance = generate_mkp(10, 2, rng=4)
        config = GaConfig(population_size=10, num_children=50)
        result = chu_beasley_ga(instance, config, rng=0)
        assert isinstance(result, GaResult)
        assert result.generations == 50

    def test_improves_over_random_population(self):
        instance = generate_mkp(40, 5, rng=5)
        result = chu_beasley_ga(instance, FAST, rng=6)
        # The GA must beat its own first-generation incumbent.
        assert result.profit_history[-1] >= result.profit_history[0]
