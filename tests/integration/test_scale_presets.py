"""End-to-end checks of the REPRO_SCALE harness wiring at smoke scale."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    _SCALES,
    mkp_saim_config,
    qkp_saim_config,
    run_saim_on_qkp,
    table2_suite,
    table5_suite,
)

SMOKE = _SCALES["smoke"]
FULL = _SCALES["full"]


class TestPresetConsistency:
    def test_all_presets_define_same_structure(self):
        for scale in _SCALES.values():
            assert scale.instances_per_group >= 1
            assert 0 < scale.iteration_factor <= 1.0
            assert 0 < scale.mcs_factor <= 1.0

    def test_full_scale_is_the_paper(self):
        qkp = qkp_saim_config(FULL)
        assert qkp.num_iterations == 2000
        assert qkp.mcs_per_run == 1000
        assert qkp.eta == 20.0
        assert qkp.eta_decay == "constant"
        assert not qkp.normalize_step
        mkp = mkp_saim_config(FULL)
        assert mkp.num_iterations == 5000
        assert mkp.eta == pytest.approx(0.05)

    def test_reduced_scales_use_robust_step(self):
        for name in ("smoke", "ci"):
            config = qkp_saim_config(_SCALES[name])
            assert config.normalize_step
            assert config.eta_decay == "sqrt"

    def test_suites_scale_instance_counts(self):
        assert len(table2_suite(SMOKE)) == 2 * SMOKE.instances_per_group
        assert len(table5_suite(SMOKE)) == 3 * SMOKE.instances_per_group

    def test_suite_instances_are_stable_across_calls(self):
        first = table2_suite(SMOKE)
        second = table2_suite(SMOKE)
        for a, b in zip(first, second):
            assert a.name == b.name
            np.testing.assert_array_equal(a.weights, b.weights)


class TestSmokePipeline:
    def test_smoke_scale_qkp_run_end_to_end(self):
        """The complete harness path a benchmark takes, at smoke size."""
        instance = table2_suite(SMOKE)[0]
        record = run_saim_on_qkp(instance, qkp_saim_config(SMOKE), seed=0)
        assert record.instance_name == instance.name
        assert record.penalty > 0
        assert record.total_mcs == (
            qkp_saim_config(SMOKE).num_iterations
            * qkp_saim_config(SMOKE).mcs_per_run
        )

    def test_harness_runs_are_deterministic(self):
        instance = table2_suite(SMOKE)[0]
        a = run_saim_on_qkp(instance, qkp_saim_config(SMOKE), seed=5)
        b = run_saim_on_qkp(instance, qkp_saim_config(SMOKE), seed=5)
        assert a.best_accuracy == b.best_accuracy or (
            np.isnan(a.best_accuracy) and np.isnan(b.best_accuracy)
        )
        assert a.feasible_percent == b.feasible_percent
