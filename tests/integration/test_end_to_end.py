"""End-to-end integration: public API flows a user would actually run."""

import pytest

import repro
from repro import (
    SaimConfig,
    SelfAdaptiveIsingMachine,
    encode_with_slacks,
    generate_mkp,
    generate_qkp,
    penalty_method_solve,
    tune_penalty,
)
from repro.baselines.exact_qkp import exact_qkp_bruteforce
from repro.baselines.milp import solve_mkp_exact


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "2.7.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestQkpPipeline:
    def test_docstring_quickstart(self):
        instance = generate_qkp(num_items=40, density=0.5, rng=1)
        saim = SelfAdaptiveIsingMachine(
            SaimConfig(num_iterations=30, mcs_per_run=150)
        )
        result = saim.solve(instance.to_problem(), rng=7)
        assert result.num_iterations == 30
        if result.found_feasible:
            assert instance.is_feasible(result.best_x)

    def test_saim_beats_untuned_penalty_method(self):
        """The paper's core comparison at a fixed small P = 2dN."""
        instance = generate_qkp(20, 0.5, rng=3)
        problem = instance.to_problem()
        encoded = encode_with_slacks(problem)

        from repro.core.encoding import normalize_problem
        from repro.core.penalty import density_heuristic_penalty

        normalized, _ = normalize_problem(encoded.problem)
        small_p = density_heuristic_penalty(normalized, alpha=2.0)
        penalty = penalty_method_solve(
            encoded, small_p, num_runs=60, mcs_per_run=200, rng=5
        )
        saim = SelfAdaptiveIsingMachine(
            SaimConfig(num_iterations=60, mcs_per_run=200)
        ).solve(problem, rng=5)

        assert saim.found_feasible
        # Same budget, same P: SAIM must find at least as good a solution
        # (typically the penalty method finds nothing feasible at all).
        if penalty.best_x is not None:
            assert saim.best_cost <= penalty.best_cost + 1e-9

    def test_penalty_tuning_pipeline(self):
        encoded = encode_with_slacks(generate_qkp(15, 0.5, rng=4).to_problem())
        tuned = tune_penalty(encoded, num_runs=20, mcs_per_run=100, rng=0)
        assert tuned.result.feasible_ratio > 0
        assert tuned.tuned_penalty >= 0


class TestMkpPipeline:
    def test_saim_solves_mkp_near_optimally(self):
        instance = generate_mkp(20, 3, rng=0)
        exact = solve_mkp_exact(instance)
        # Budget-compensated step: paper eta = 0.05 assumes K = 5000.
        config = SaimConfig.mkp_paper().scaled(
            80 / 5000, 200 / 1000, compensate_eta=True
        )
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=2)
        assert result.found_feasible
        assert -result.best_cost >= 0.9 * exact.profit

    def test_multiple_lambdas_tracked(self):
        instance = generate_mkp(15, 4, rng=1)
        config = SaimConfig.mkp_paper(num_iterations=20, mcs_per_run=100)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=0)
        assert result.trace.lambdas.shape == (20, 4)
        assert result.final_lambdas.shape == (4,)


class TestCrossSolverConsistency:
    def test_saim_never_beats_exact(self):
        instance = generate_qkp(14, 0.5, rng=6)
        _, opt = exact_qkp_bruteforce(instance)
        config = SaimConfig(num_iterations=50, mcs_per_run=150)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=1)
        if result.found_feasible:
            assert -result.best_cost <= opt + 1e-9

    def test_feasible_records_verified_against_instance(self):
        instance = generate_qkp(16, 0.5, rng=7)
        config = SaimConfig(num_iterations=40, mcs_per_run=150)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=2)
        for record in result.feasible_records:
            assert instance.is_feasible(record.x)
            assert instance.cost(record.x) == pytest.approx(record.cost)
