"""The README's quickstart snippet must actually work as written."""

import re
from pathlib import Path


README = Path(__file__).parents[2] / "README.md"


class TestReadme:
    def test_quickstart_snippet_executes(self):
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README has no python code block"
        snippet = blocks[0]
        # Execute verbatim in a fresh namespace.
        namespace = {}
        exec(compile(snippet, "README.md", "exec"), namespace)
        report = namespace["report"]
        assert report.num_iterations > 0
        assert 0.0 <= report.detail.feasible_ratio <= 1.0
        assert namespace["exact"].feasible
        # The float32 fast-path example must run and report real replicas.
        fast = namespace["fast"]
        assert fast.num_replicas == 32
        assert fast.num_iterations > 0

    def test_higher_order_snippet_executes(self):
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        snippets = [b for b in blocks if "higher_order" in b]
        assert snippets, "README has no higher-order python block"
        namespace = {}
        exec(compile(snippets[0], "README.md", "exec"), namespace)
        instance = namespace["instance"]
        report = namespace["report"]
        assert 0 <= instance.count_satisfied(report.best_x) <= instance.num_clauses
        assert namespace["cubic"].num_iterations > 0

    def test_auto_snippet_executes(self):
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        snippets = [b for b in blocks if 'method="auto"' in b]
        assert snippets, "README has no method=auto python block"
        namespace = {}
        exec(compile(snippets[0], "README.md", "exec"), namespace)
        auto_report = namespace["auto_report"]
        assert auto_report.method == "auto"
        assert namespace["plan"]["backend"] == auto_report.backend
        assert namespace["prediction"]["source"] in ("model", "heuristic")
        # Planning without solving returns the same schema.
        assert namespace["chosen"].backend
        assert namespace["pricing"]["source"] in ("model", "heuristic")

    def test_mentions_all_deliverable_paths(self):
        text = README.read_text()
        for token in ("examples/", "tests/", "benchmarks/", "DESIGN.md",
                      "EXPERIMENTS.md", "REPRO_SCALE"):
            assert token in text, f"README should mention {token}"

    def test_install_commands_present(self):
        text = README.read_text()
        assert "setup.py develop" in text or "pip install -e ." in text
