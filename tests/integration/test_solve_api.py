"""Tests for the registry-backed front door (repro.solve)."""

import numpy as np
import pytest

import repro
from repro.core.penalty import PenaltyMethodResult
from repro.core.saim import SaimConfig, SaimResult
from repro.problems.generators import generate_qkp
from tests.helpers import tiny_knapsack_problem

FAST = dict(num_iterations=15, mcs_per_run=100, eta=5.0,
            eta_decay="sqrt", normalize_step=True)


class TestRegistry:
    def test_default_methods_registered(self):
        assert "saim" in repro.available_methods()
        assert "penalty" in repro.available_methods()

    def test_default_backends_registered(self):
        for name in ("pbit", "metropolis", "quantized", "chromatic", "pt"):
            assert name in repro.available_backends()

    def test_unknown_method_lists_available(self):
        with pytest.raises(ValueError, match="unknown method"):
            repro.solve(tiny_knapsack_problem(), method="quantum")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.solve(tiny_knapsack_problem(), backend="dilution-fridge")

    def test_custom_registration_round_trip(self):
        def runner(problem, **kwargs):
            return "sentinel"

        repro.register_method("sentinel-method", runner)
        try:
            assert "sentinel-method" in repro.available_methods()
            assert repro.solve(
                tiny_knapsack_problem(), method="sentinel-method"
            ) == "sentinel"
        finally:
            from repro import api

            del api._METHODS["sentinel-method"]


class TestSolveFrontDoor:
    def test_solves_problem_object(self):
        result = repro.solve(tiny_knapsack_problem(), rng=0, **FAST)
        assert isinstance(result, SaimResult)
        assert result.found_feasible
        assert result.best_cost == pytest.approx(-8.0)

    def test_accepts_instance_with_to_problem(self):
        instance = generate_qkp(12, 0.5, rng=1)
        result = repro.solve(instance, rng=1, **FAST)
        assert isinstance(result, SaimResult)
        if result.found_feasible:
            assert instance.is_feasible(result.best_x)

    def test_config_object_plus_overrides(self):
        config = SaimConfig(**FAST)
        result = repro.solve(
            tiny_knapsack_problem(), config=config, num_iterations=7, rng=0
        )
        assert result.num_iterations == 7
        assert result.mcs_per_run == 100

    def test_config_dict(self):
        result = repro.solve(
            tiny_knapsack_problem(), config=dict(FAST), rng=0
        )
        assert result.num_iterations == 15

    def test_bad_config_type_rejected(self):
        with pytest.raises(TypeError):
            repro.solve(tiny_knapsack_problem(), config=42)

    def test_replicas_and_accounting(self):
        result = repro.solve(
            tiny_knapsack_problem(), num_replicas=4, rng=0, **FAST
        )
        assert result.num_replicas == 4
        assert result.total_mcs == 15 * 4 * 100
        assert result.num_iterations == 15

    def test_matches_legacy_shim_bit_for_bit(self):
        from repro.core.saim import SelfAdaptiveIsingMachine

        instance = generate_qkp(14, 0.5, rng=3)
        config = SaimConfig(**FAST)
        front = repro.solve(instance, config=config, rng=7)
        shim = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=7)
        assert front.best_cost == shim.best_cost
        np.testing.assert_array_equal(front.final_lambdas, shim.final_lambdas)

    @pytest.mark.parametrize("backend", ["pbit", "metropolis", "quantized",
                                         "chromatic"])
    def test_every_backend_solves_tiny_knapsack(self, backend):
        result = repro.solve(
            tiny_knapsack_problem(), backend=backend, rng=0, **FAST
        )
        assert isinstance(result, SaimResult)
        assert result.found_feasible
        assert result.best_cost == pytest.approx(-8.0)

    def test_quantized_backend_options(self):
        result = repro.solve(
            tiny_knapsack_problem(), backend="quantized",
            backend_options={"bits": 12}, rng=0, **FAST
        )
        assert result.found_feasible

    def test_pt_backend_via_fallback(self):
        result = repro.solve(
            tiny_knapsack_problem(), backend="pt",
            backend_options={"num_replicas": 4}, rng=0,
            num_iterations=8, mcs_per_run=60, eta=5.0,
            eta_decay="sqrt", normalize_step=True,
        )
        assert isinstance(result, SaimResult)

    def test_penalty_method(self):
        result = repro.solve(
            tiny_knapsack_problem(), method="penalty",
            num_iterations=40, mcs_per_run=100, rng=0,
        )
        assert isinstance(result, PenaltyMethodResult)
        assert result.best_x is not None
        assert result.num_runs == 40

    def test_penalty_method_rejects_other_backends(self):
        with pytest.raises(ValueError, match="'pbit' backend only"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                backend="metropolis", num_iterations=5, mcs_per_run=20,
            )

    def test_penalty_method_rejects_replicas(self):
        with pytest.raises(ValueError, match="no replica loop"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                num_replicas=8, num_iterations=5, mcs_per_run=20,
            )

    def test_penalty_method_rejects_backend_options(self):
        """Regression: backend_options used to be silently discarded."""
        with pytest.raises(ValueError, match="no backend_options"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                backend_options={"bits": 8}, num_iterations=5,
                mcs_per_run=20,
            )

    def test_penalty_method_accepts_empty_backend_options(self):
        result = repro.solve(
            tiny_knapsack_problem(), method="penalty",
            backend_options={}, num_iterations=5, mcs_per_run=20, rng=0,
        )
        assert isinstance(result, PenaltyMethodResult)

    def test_penalty_method_rejects_lambdas(self):
        with pytest.raises(ValueError, match="no Lagrange multipliers"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                initial_lambdas=np.zeros(1), num_iterations=5,
                mcs_per_run=20,
            )
