"""Tests for the registry-backed front door (repro.solve)."""

import numpy as np
import pytest

import repro
from repro.core.penalty import PenaltyMethodResult
from repro.core.report import SolveReport
from repro.core.saim import SaimConfig, SaimResult
from repro.problems.generators import generate_mkp, generate_qkp
from tests.helpers import tiny_knapsack_problem

FAST = dict(num_iterations=15, mcs_per_run=100, eta=5.0,
            eta_decay="sqrt", normalize_step=True)


class TestRegistry:
    def test_default_methods_registered(self):
        for name in ("saim", "penalty", "greedy", "ga", "milp", "bnb",
                     "exhaustive"):
            assert name in repro.available_methods()

    def test_default_backends_registered(self):
        for name in ("pbit", "metropolis", "quantized", "chromatic", "pt"):
            assert name in repro.available_backends()

    def test_unknown_method_lists_available(self):
        with pytest.raises(ValueError, match="unknown method"):
            repro.solve(tiny_knapsack_problem(), method="quantum")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.solve(tiny_knapsack_problem(), backend="dilution-fridge")

    def test_descriptions_cover_registry(self):
        methods = repro.describe_methods()
        assert set(methods) == set(repro.available_methods())
        assert all(methods.values()), "every method needs a description"
        backends = repro.describe_backends()
        assert set(backends) == set(repro.available_backends())
        assert all(backends.values()), "every backend needs a description"

    def test_method_info_flags(self):
        assert repro.method_info("saim").uses_backend
        assert repro.method_info("saim").uses_lambdas
        for name in ("greedy", "ga", "milp", "bnb", "exhaustive"):
            spec = repro.method_info(name)
            assert not spec.uses_backend
            assert not spec.uses_config

    def test_custom_registration_round_trip(self):
        def runner(problem, **kwargs):
            return "sentinel"

        repro.register_method("sentinel-method", runner)
        try:
            assert "sentinel-method" in repro.available_methods()
            report = repro.solve(
                tiny_knapsack_problem(), method="sentinel-method"
            )
            # Legacy runners returning arbitrary objects are coerced into
            # the schema, with the raw value as the detail payload.
            assert isinstance(report, SolveReport)
            assert report.detail == "sentinel"
            assert not report.feasible
        finally:
            from repro import api

            del api._METHODS["sentinel-method"]


class TestSolveReportSchema:
    """Acceptance: every registered method returns the same schema."""

    @pytest.fixture(scope="class")
    def mkp(self):
        return generate_mkp(12, 2, rng=3)

    @pytest.mark.parametrize("method", ["saim", "penalty", "greedy", "ga",
                                        "milp", "bnb", "exhaustive"])
    def test_every_method_returns_solve_report(self, mkp, method):
        kwargs = {}
        if repro.method_info(method).uses_config:
            kwargs = dict(num_iterations=10, mcs_per_run=60)
        if method == "ga":
            kwargs = dict(
                method_options={"population_size": 10, "num_children": 100}
            )
        report = repro.solve(mkp, method=method, rng=0, **kwargs)
        assert isinstance(report, SolveReport)
        assert report.method == method
        assert report.problem_name == mkp.name
        assert report.wall_seconds > 0
        assert report.num_iterations >= 1
        if repro.method_info(method).uses_backend:
            assert report.backend == "pbit"
        else:
            assert report.backend is None
        if report.feasible:
            assert mkp.is_feasible(report.best_x)
            assert report.best_cost == pytest.approx(-mkp.profit(report.best_x))

    def test_exact_methods_agree(self, mkp):
        costs = {
            method: repro.solve(mkp, method=method).best_cost
            for method in ("milp", "bnb", "exhaustive")
        }
        assert len({round(c, 6) for c in costs.values()}) == 1, costs

    def test_heuristics_bounded_by_exact(self, mkp):
        exact = repro.solve(mkp, method="milp").best_cost
        for method, kwargs in (
            ("greedy", {}),
            ("ga", dict(method_options={"population_size": 10,
                                        "num_children": 200}, rng=0)),
        ):
            report = repro.solve(mkp, method=method, **kwargs)
            assert report.best_cost >= exact - 1e-9

    def test_detail_payload_types(self, mkp):
        from repro.baselines.branch_and_bound import BnBResult
        from repro.baselines.exact_qkp import ExhaustiveResult
        from repro.baselines.ga import GaResult
        from repro.baselines.greedy import GreedyResult
        from repro.baselines.milp import MilpResult

        expected = {
            "greedy": GreedyResult,
            "milp": MilpResult,
            "bnb": BnBResult,
            "exhaustive": ExhaustiveResult,
        }
        for method, kind in expected.items():
            assert isinstance(
                repro.solve(mkp, method=method).detail, kind
            )
        ga = repro.solve(
            mkp, method="ga", rng=0,
            method_options={"population_size": 10, "num_children": 50},
        )
        assert isinstance(ga.detail, GaResult)

    def test_ga_runs_on_qkp(self):
        instance = generate_qkp(12, 0.5, rng=1)
        report = repro.solve(
            instance, method="ga", rng=0,
            method_options={"population_size": 10, "num_children": 200},
        )
        assert report.feasible
        assert instance.is_feasible(report.best_x)

    def test_exhaustive_solves_bare_problem(self):
        report = repro.solve(tiny_knapsack_problem(), method="exhaustive")
        assert report.feasible
        assert report.best_cost == pytest.approx(-8.0)
        assert report.detail.num_feasible >= 1

    def test_greedy_rejects_bare_problem(self):
        with pytest.raises(ValueError, match="typed QKP or MKP instance"):
            repro.solve(tiny_knapsack_problem(), method="greedy")

    def test_milp_redirects_qkp(self):
        with pytest.raises(ValueError, match="linear-objective"):
            repro.solve(generate_qkp(10, 0.5, rng=0), method="milp")

    def test_unknown_method_options_rejected(self, mkp):
        with pytest.raises(ValueError, match="unknown method_options"):
            repro.solve(mkp, method="greedy",
                        method_options={"temperature": 3})

    def test_summary_mentions_method_and_problem(self, mkp):
        report = repro.solve(mkp, method="greedy")
        assert "greedy" in report.summary()
        assert mkp.name in report.summary()


class TestBackendFreeRejections:
    """Backend knobs on backend-free methods must raise, not be ignored."""

    @pytest.fixture(scope="class")
    def qkp(self):
        return generate_qkp(10, 0.5, rng=2)

    def test_rejects_explicit_backend(self, qkp):
        with pytest.raises(ValueError, match="backend-free"):
            repro.solve(qkp, method="greedy", backend="pbit")

    def test_rejects_replicas(self, qkp):
        with pytest.raises(ValueError, match="no replica loop"):
            repro.solve(qkp, method="greedy", num_replicas=4)

    def test_rejects_backend_options(self, qkp):
        with pytest.raises(ValueError, match="backend_options"):
            repro.solve(qkp, method="greedy", backend_options={"bits": 8})

    def test_rejects_lambdas(self, qkp):
        with pytest.raises(ValueError, match="no Lagrange multipliers"):
            repro.solve(qkp, method="greedy", initial_lambdas=np.zeros(1))

    def test_rejects_aggregate(self, qkp):
        with pytest.raises(ValueError, match="no replica aggregate"):
            repro.solve(qkp, method="greedy", aggregate="mean")

    def test_rejects_saim_config(self, qkp):
        with pytest.raises(ValueError, match="no SaimConfig"):
            repro.solve(qkp, method="greedy", num_iterations=10)
        with pytest.raises(ValueError, match="no SaimConfig"):
            repro.solve(qkp, method="greedy", config=SaimConfig())


class TestSolveFrontDoor:
    def test_solves_problem_object(self):
        report = repro.solve(tiny_knapsack_problem(), rng=0, **FAST)
        assert isinstance(report, SolveReport)
        assert isinstance(report.detail, SaimResult)
        assert report.feasible and report.found_feasible
        assert report.best_cost == pytest.approx(-8.0)
        assert report.method == "saim"
        assert report.backend == "pbit"

    def test_accepts_instance_with_to_problem(self):
        instance = generate_qkp(12, 0.5, rng=1)
        report = repro.solve(instance, rng=1, **FAST)
        assert isinstance(report.detail, SaimResult)
        if report.feasible:
            assert instance.is_feasible(report.best_x)

    def test_config_object_plus_overrides(self):
        config = SaimConfig(**FAST)
        report = repro.solve(
            tiny_knapsack_problem(), config=config, num_iterations=7, rng=0
        )
        assert report.num_iterations == 7
        assert report.mcs_per_run == 100  # delegated to the SaimResult

    def test_config_dict(self):
        report = repro.solve(
            tiny_knapsack_problem(), config=dict(FAST), rng=0
        )
        assert report.num_iterations == 15

    def test_bad_config_type_rejected(self):
        with pytest.raises(TypeError):
            repro.solve(tiny_knapsack_problem(), config=42)

    def test_unknown_config_field_lists_valid_names(self):
        """Regression: a typo'd config key used to raise a raw TypeError
        from the dataclass constructor."""
        with pytest.raises(ValueError, match="unknown SaimConfig field"):
            repro.solve(tiny_knapsack_problem(), num_itertions=10)
        with pytest.raises(ValueError) as excinfo:
            repro.solve(tiny_knapsack_problem(), config={"etaa": 2.0})
        assert "etaa" in str(excinfo.value)
        assert "eta" in str(excinfo.value)  # valid fields are listed

    def test_replicas_and_accounting(self):
        report = repro.solve(
            tiny_knapsack_problem(), num_replicas=4, rng=0, **FAST
        )
        assert report.num_replicas == 4
        assert report.total_mcs == 15 * 4 * 100
        assert report.num_iterations == 15

    def test_matches_legacy_shim_bit_for_bit(self):
        from repro.core.saim import SelfAdaptiveIsingMachine

        instance = generate_qkp(14, 0.5, rng=3)
        config = SaimConfig(**FAST)
        front = repro.solve(instance, config=config, rng=7)
        shim = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=7)
        assert front.best_cost == shim.best_cost
        np.testing.assert_array_equal(front.final_lambdas, shim.final_lambdas)

    @pytest.mark.parametrize("backend", ["pbit", "metropolis", "quantized",
                                         "chromatic"])
    def test_every_backend_solves_tiny_knapsack(self, backend):
        report = repro.solve(
            tiny_knapsack_problem(), backend=backend, rng=0, **FAST
        )
        assert isinstance(report.detail, SaimResult)
        assert report.feasible
        assert report.best_cost == pytest.approx(-8.0)
        assert report.backend == backend

    def test_quantized_backend_options(self):
        report = repro.solve(
            tiny_knapsack_problem(), backend="quantized",
            backend_options={"bits": 12}, rng=0, **FAST
        )
        assert report.feasible

    def test_pt_backend_num_chains(self):
        report = repro.solve(
            tiny_knapsack_problem(), backend="pt",
            backend_options={"num_chains": 4}, rng=0,
            num_iterations=8, mcs_per_run=60, eta=5.0,
            eta_decay="sqrt", normalize_step=True,
        )
        assert isinstance(report.detail, SaimResult)

    def test_pt_num_replicas_alias_warns(self):
        """The old builder knob collided with the engine-level replica
        argument; it must still work but warn."""
        with pytest.warns(DeprecationWarning, match="num_chains"):
            report = repro.solve(
                tiny_knapsack_problem(), backend="pt",
                backend_options={"num_replicas": 4}, rng=0,
                num_iterations=8, mcs_per_run=60, eta=5.0,
                eta_decay="sqrt", normalize_step=True,
            )
        assert isinstance(report.detail, SaimResult)

    def test_pt_conflicting_chain_counts_rejected(self):
        with pytest.raises(ValueError, match="conflicting pt chain counts"):
            with pytest.warns(DeprecationWarning):
                repro.solve(
                    tiny_knapsack_problem(), backend="pt",
                    backend_options={"num_chains": 4, "num_replicas": 2},
                    num_iterations=5, mcs_per_run=20,
                )

    def test_pt_alias_agreeing_values_accepted(self):
        with pytest.warns(DeprecationWarning):
            report = repro.solve(
                tiny_knapsack_problem(), backend="pt",
                backend_options={"num_chains": 3, "num_replicas": 3}, rng=0,
                num_iterations=5, mcs_per_run=40, eta=5.0,
                eta_decay="sqrt", normalize_step=True,
            )
        assert isinstance(report, SolveReport)

    def test_penalty_method(self):
        report = repro.solve(
            tiny_knapsack_problem(), method="penalty",
            num_iterations=40, mcs_per_run=100, rng=0,
        )
        assert isinstance(report, SolveReport)
        assert isinstance(report.detail, PenaltyMethodResult)
        assert report.best_x is not None
        assert report.num_iterations == 40
        assert report.detail.num_runs == 40

    def test_penalty_method_rejects_other_backends(self):
        with pytest.raises(ValueError, match="'pbit' backend only"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                backend="metropolis", num_iterations=5, mcs_per_run=20,
            )

    def test_penalty_method_rejects_replicas(self):
        with pytest.raises(ValueError, match="no replica loop"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                num_replicas=8, num_iterations=5, mcs_per_run=20,
            )

    def test_penalty_method_rejects_backend_options(self):
        """Regression: backend_options used to be silently discarded."""
        with pytest.raises(ValueError, match="no backend_options"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                backend_options={"bits": 8}, num_iterations=5,
                mcs_per_run=20,
            )

    def test_penalty_method_accepts_empty_backend_options(self):
        report = repro.solve(
            tiny_knapsack_problem(), method="penalty",
            backend_options={}, num_iterations=5, mcs_per_run=20, rng=0,
        )
        assert isinstance(report.detail, PenaltyMethodResult)

    def test_penalty_method_rejects_lambdas(self):
        with pytest.raises(ValueError, match="no Lagrange multipliers"):
            repro.solve(
                tiny_knapsack_problem(), method="penalty",
                initial_lambdas=np.zeros(1), num_iterations=5,
                mcs_per_run=20,
            )

    def test_saim_rejects_method_options(self):
        with pytest.raises(ValueError, match="no method_options"):
            repro.solve(
                tiny_knapsack_problem(), method_options={"x": 1},
                num_iterations=5, mcs_per_run=20,
            )
