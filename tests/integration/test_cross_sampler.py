"""Cross-sampler consistency: all substrates agree on the same physics."""

import numpy as np
import pytest

from repro.analysis.diagnostics import boltzmann_distance
from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.parallel_tempering import parallel_tempering
from repro.ising.pbit import PBitMachine
from repro.ising.sa import simulated_annealing
from repro.ising.sparse import ChromaticPBitMachine, SparseIsingModel
from tests.helpers import random_ising


class TestGroundStateAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_samplers_find_the_same_ground_state(self, seed):
        """Gibbs p-bits, Metropolis SA, PT and chromatic Gibbs must all
        reach the exact ground energy of the same small model."""
        model = random_ising(10, rng=seed, density=0.4)
        _, ground = brute_force_ground_state(model)
        schedule = linear_beta_schedule(8.0, 300)

        pbit = min(
            PBitMachine(model, rng=trial).anneal(schedule).best_energy
            for trial in range(3)
        )
        metro = min(
            simulated_annealing(model, schedule, rng=trial).best_energy
            for trial in range(3)
        )
        pt = parallel_tempering(
            model, num_sweeps=300, num_replicas=8, beta_max=8.0, rng=seed
        ).best_energy
        chromatic = min(
            ChromaticPBitMachine(
                SparseIsingModel.from_dense(model), rng=trial
            ).anneal(schedule).best_energy
            for trial in range(3)
        )

        for found in (pbit, metro, pt, chromatic):
            assert found == pytest.approx(ground, abs=1e-9)


class TestDistributionAgreement:
    def test_chromatic_gibbs_samples_boltzmann(self):
        """Color-synchronous updates are exact block Gibbs: the stationary
        distribution must match eq. 11 like the sequential sampler."""
        dense = random_ising(4, rng=7, density=0.5)
        sparse_model = SparseIsingModel.from_dense(dense)
        machine = ChromaticPBitMachine(sparse_model, rng=0)
        beta = 0.6
        states = []
        schedule = np.full(1, beta)
        state = None
        # Collect a long chain of single-sweep snapshots.
        for _ in range(12000):
            result = machine.anneal(schedule, initial=state)
            state = result.last_sample
            states.append(state.copy())
        distance = boltzmann_distance(dense, np.array(states[500:]), beta)
        assert distance < 0.05

    def test_gibbs_and_metropolis_share_stationary_distribution(self):
        """Both chains target eq. 11; their empirical laws must agree."""
        model = random_ising(4, rng=8)
        beta = 0.5
        gibbs_samples = PBitMachine(model, rng=0).sample_boltzmann(
            beta, num_sweeps=12000, burn_in=500
        )
        gibbs_dist = boltzmann_distance(model, gibbs_samples, beta)

        metro_states = []
        state = None
        for _ in range(12000):
            result = simulated_annealing(
                model, np.full(1, beta), rng=None, initial=state
            )
            state = result.last_sample
            metro_states.append(state.copy())
        metro_dist = boltzmann_distance(model, np.array(metro_states[500:]), beta)
        assert gibbs_dist < 0.06
        assert metro_dist < 0.06
