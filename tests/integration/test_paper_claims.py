"""Scaled-down checks of the paper's qualitative claims.

These are the reproduction's regression tests: each test pins one claim from
the paper (Figs. 1-5, Tables II-V narratives) at a problem size small enough
for CI.  The benchmark harness re-verifies them at larger scale.
"""

import numpy as np
import pytest

from repro.core.encoding import encode_with_slacks, normalize_problem
from repro.core.lagrangian import LagrangianIsing
from repro.core.penalty import build_penalty_qubo, density_heuristic_penalty
from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.ising.exhaustive import brute_force_ground_state
from repro.problems.generators import generate_mkp, generate_qkp
from tests.helpers import tiny_constrained_problem


class TestFig1PenaltyTradeoff:
    """Fig. 1b: small P gives infeasible lower bounds, large P fixes it."""

    def test_small_p_lower_bound_below_opt(self):
        problem = tiny_constrained_problem()  # OPT = -5
        qubo = build_penalty_qubo(problem, 0.05)
        state, lower_bound = brute_force_ground_state(qubo)
        assert lower_bound < -5.0
        assert not problem.is_feasible(state)

    def test_large_p_ground_state_feasible(self):
        problem = tiny_constrained_problem()
        qubo = build_penalty_qubo(problem, 50.0)
        state, lower_bound = brute_force_ground_state(qubo)
        assert problem.is_feasible(state)
        assert lower_bound == pytest.approx(-5.0)

    def test_critical_penalty_exists_and_is_monotone(self):
        """Feasibility of the ground state is monotone in P (defines P_C)."""
        problem = tiny_constrained_problem()
        feasible_flags = []
        for penalty in np.geomspace(0.01, 100, 30):
            state, _ = brute_force_ground_state(build_penalty_qubo(problem, penalty))
            feasible_flags.append(problem.is_feasible(state))
        # Once feasible, stays feasible.
        first_true = feasible_flags.index(True)
        assert all(feasible_flags[first_true:])


class TestFig2LagrangeClosesGap:
    """Fig. 2: with P < P_C, the optimal lambda* recovers LB = OPT."""

    def test_gap_closed_by_dual_ascent(self):
        problem = tiny_constrained_problem()
        penalty = 0.05  # far below critical
        lag = LagrangianIsing(problem, penalty)

        def lower_bound(lam):
            _, value = brute_force_ground_state(lag.ising_for(np.array([lam])))
            return value

        # Subgradient ascent on the dual, exactly as SAIM does but with an
        # exact minimization oracle.
        lam = 0.0
        for _ in range(200):
            state, _ = brute_force_ground_state(lag.ising_for(np.array([lam])))
            x = ((state + 1) / 2).astype(int)
            residual = lag.residuals(x)[0]
            lam += 0.05 * residual
        assert lower_bound(lam) == pytest.approx(-5.0, abs=0.2)


class TestFig3SaimDynamics:
    """Fig. 3: unfeasible transient, then lambda stabilizes and feasible
    samples appear."""

    def test_transient_then_feasible(self):
        instance = generate_qkp(20, 0.5, rng=42)
        config = SaimConfig(num_iterations=80, mcs_per_run=200)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=0)
        trace = result.trace
        assert result.found_feasible
        # Feasible samples concentrate after the transient: the second half
        # of the run must contain at least as many as the first half.
        half = config.num_iterations // 2
        early = int(trace.feasible[:half].sum())
        late = int(trace.feasible[half:].sum())
        assert late >= early

    def test_lambda_moves_from_zero(self):
        instance = generate_qkp(20, 0.5, rng=43)
        config = SaimConfig(num_iterations=40, mcs_per_run=150)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=0)
        assert np.any(result.trace.lambdas[-1] != 0)


class TestTable2Narrative:
    """Table II: SAIM with fixed P = 2dN beats the same-budget penalty
    method, which mostly cannot even find feasible samples."""

    def test_same_budget_comparison(self):
        from repro.core.penalty import penalty_method_solve

        wins = 0
        for seed in range(3):
            instance = generate_qkp(18, 0.25, rng=100 + seed)
            problem = instance.to_problem()
            encoded = encode_with_slacks(problem)
            normalized, _ = normalize_problem(encoded.problem)
            small_p = density_heuristic_penalty(normalized, alpha=2.0)

            penalty = penalty_method_solve(
                encoded, small_p, num_runs=40, mcs_per_run=150, rng=seed
            )
            saim = SelfAdaptiveIsingMachine(
                SaimConfig(num_iterations=40, mcs_per_run=150)
            ).solve(problem, rng=seed)

            saim_profit = -saim.best_cost if saim.found_feasible else 0.0
            penalty_profit = -penalty.best_cost if penalty.best_x is not None else 0.0
            if saim_profit >= penalty_profit:
                wins += 1
        assert wins >= 2  # SAIM wins the clear majority


class TestFig5MkpDynamics:
    """Fig. 5: multipliers increase from zero while constraints are violated,
    then stabilize; SAIM finds near-optimal MKP solutions."""

    def test_multipliers_rise_then_feasible(self):
        instance = generate_mkp(20, 5, rng=7)
        config = SaimConfig.mkp_paper(num_iterations=100, mcs_per_run=150)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=1)
        lambdas = result.trace.lambdas
        # Multipliers start at zero and must have grown (violated knapsacks
        # push lambda up since A x - b >= 0 initially when everything is
        # over capacity).
        assert np.all(lambdas[0] == 0)
        assert lambdas[-1].max() > 0
        assert result.found_feasible


class TestMcsAccounting:
    """Fig. 4b: sample-count bookkeeping behind the speedup table."""

    def test_total_mcs_is_runs_times_sweeps(self):
        instance = generate_qkp(15, 0.5, rng=8)
        config = SaimConfig(num_iterations=25, mcs_per_run=80)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=0)
        assert result.total_mcs == 25 * 80

    def test_paper_budget_reference(self):
        # The paper's QKP setting spends 2M MCS; verify the config arithmetic.
        config = SaimConfig.qkp_paper()
        assert config.num_iterations * config.mcs_per_run == 2_000_000
