"""Smoke tests: every shipped example runs end-to-end and prints results."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5

    def test_quickstart_present(self):
        assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
class TestExamplesRun:
    def test_runs_and_reports(self, name, capsys):
        module = _load_example(name)
        assert hasattr(module, "main"), f"{name}.py must define main()"
        module.main()
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3, f"{name} printed almost nothing"


class TestExampleResults:
    """Pin the headline numbers the examples advertise."""

    def test_quickstart_reaches_reference(self, capsys):
        _load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "SAIM" in out

    def test_toy_lagrange_closes_gap(self, capsys):
        _load_example("toy_lagrange").main()
        out = capsys.readouterr().out
        assert "LB_L = -1.00" in out
        assert "gap closes" in out

    def test_maxcut_demo_hits_optimum(self, capsys):
        _load_example("maxcut_demo").main()
        out = capsys.readouterr().out
        assert "100.0% of optimum" in out

    def test_capital_budgeting_reports_all_solvers(self, capsys):
        _load_example("capital_budgeting").main()
        out = capsys.readouterr().out
        for token in ("Exact optimum", "Chu-Beasley GA", "SAIM"):
            assert token in out
