"""Export hygiene: every public symbol resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.ising",
    "repro.problems",
    "repro.baselines",
    "repro.analysis",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_symbols_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            assert getattr(package, name, None) is not None, (
                f"{package_name}.{name} in __all__ but not importable"
            )

    def test_no_duplicate_exports(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))

    def test_public_callables_are_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports without docstrings: {undocumented}"
        )


class TestModuleDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_packages_have_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a module docstring"

    def test_cli_importable(self):
        cli = importlib.import_module("repro.cli")
        assert callable(cli.main)
