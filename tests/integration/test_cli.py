"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.problems.io import read_mkp, read_qkp


class TestGenerate:
    def test_generate_qkp(self, tmp_path, capsys):
        path = tmp_path / "inst.qkp"
        code = main(["generate-qkp", str(path), "--items", "12",
                     "--density", "0.5", "--seed", "3"])
        assert code == 0
        instance = read_qkp(path)
        assert instance.num_items == 12
        assert "wrote" in capsys.readouterr().out

    def test_generate_mkp(self, tmp_path):
        path = tmp_path / "inst.mkp"
        code = main(["generate-mkp", str(path), "--items", "15",
                     "--knapsacks", "3"])
        assert code == 0
        instance, _ = read_mkp(path)
        assert instance.num_constraints == 3


class TestSolve:
    @pytest.fixture
    def qkp_file(self, tmp_path):
        path = tmp_path / "small.qkp"
        main(["generate-qkp", str(path), "--items", "14", "--seed", "5"])
        return path

    @pytest.fixture
    def mkp_file(self, tmp_path):
        path = tmp_path / "small.mkp"
        main(["generate-mkp", str(path), "--items", "15", "--knapsacks", "2"])
        return path

    def test_solve_saim_qkp(self, qkp_file, capsys):
        code = main(["solve", str(qkp_file), "--solver", "saim",
                     "--iterations", "40", "--mcs", "150"])
        out = capsys.readouterr().out
        assert "SAIM penalty P" in out
        assert code == 0
        assert "best profit" in out

    def test_solve_greedy(self, qkp_file, capsys):
        assert main(["solve", str(qkp_file), "--solver", "greedy"]) == 0
        assert "greedy profit" in capsys.readouterr().out

    def test_solve_exact_small_qkp(self, qkp_file, capsys):
        assert main(["solve", str(qkp_file), "--solver", "exact"]) == 0
        assert "exact optimum" in capsys.readouterr().out

    def test_solve_exact_mkp(self, mkp_file, capsys):
        assert main(["solve", str(mkp_file), "--solver", "exact"]) == 0
        assert "exact optimum" in capsys.readouterr().out

    def test_solve_ga_mkp(self, mkp_file, capsys):
        assert main(["solve", str(mkp_file), "--solver", "ga",
                     "--iterations", "20"]) == 0
        assert "GA best profit" in capsys.readouterr().out

    def test_solve_penalty(self, qkp_file, capsys):
        assert main(["solve", str(qkp_file), "--solver", "penalty",
                     "--iterations", "20", "--mcs", "100"]) == 0
        assert "tuned penalty" in capsys.readouterr().out

    def test_ga_rejects_qkp(self, qkp_file):
        with pytest.raises(SystemExit):
            main(["solve", str(qkp_file), "--solver", "ga"])

    def test_unknown_extension_rejected(self, tmp_path):
        bad = tmp_path / "instance.txt"
        bad.write_text("nonsense")
        with pytest.raises(SystemExit):
            main(["solve", str(bad)])

    def test_solve_parallel_saim(self, qkp_file, capsys):
        code = main(["solve", str(qkp_file), "--solver", "parallel-saim",
                     "--iterations", "40", "--mcs", "120"])
        assert "SAIM penalty P" in capsys.readouterr().out
        assert code in (0, 1)

    def test_explicit_replicas_keep_requested_iterations(self, qkp_file, capsys):
        """--replicas on the plain saim solver must not silently divide the
        user's --iterations (only --solver parallel-saim buys down)."""
        code = main(["solve", str(qkp_file), "--replicas", "4",
                     "--iterations", "40", "--mcs", "120"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert f"({40 * 4 * 120} MCS total)" in out

    def test_solve_backend_option(self, qkp_file, capsys):
        code = main(["solve", str(qkp_file), "--backend", "metropolis",
                     "--iterations", "40", "--mcs", "120"])
        assert "SAIM penalty P" in capsys.readouterr().out
        assert code in (0, 1)

    def test_unknown_backend_rejected_cleanly(self, qkp_file):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["solve", str(qkp_file), "--backend", "gpu"])

    def test_bad_replicas_rejected_cleanly(self, qkp_file):
        with pytest.raises(SystemExit, match="--replicas must be >= 1"):
            main(["solve", str(qkp_file), "--replicas", "0"])

    def test_solve_saim_pt(self, qkp_file, capsys):
        code = main(["solve", str(qkp_file), "--solver", "saim-pt",
                     "--iterations", "20", "--mcs", "80"])
        assert "SAIM penalty P" in capsys.readouterr().out
        assert code in (0, 1)

    def test_sweep_backends_table(self, qkp_file, capsys):
        code = main(["sweep", str(qkp_file), "--backends", "pbit,metropolis",
                     "--replicas", "1,2", "--iterations", "30",
                     "--mcs", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Solver sweep" in out
        for token in ("method", "backend", "replicas", "best_cost",
                      "feasible_pct", "metropolis", "best:"):
            assert token in out

    def test_sweep_with_workers(self, qkp_file, capsys):
        code = main(["sweep", str(qkp_file), "--backends", "pbit",
                     "--replicas", "1,2", "--workers", "2",
                     "--iterations", "20", "--mcs", "80"])
        assert code == 0
        assert "Solver sweep" in capsys.readouterr().out

    def test_sweep_methods_comparison_table(self, mkp_file, capsys):
        """Acceptance: one table comparing SAIM against the baselines."""
        code = main(["sweep", str(mkp_file), "--methods", "saim,greedy,milp",
                     "--iterations", "25", "--mcs", "80"])
        out = capsys.readouterr().out
        assert code == 0
        for token in ("saim", "greedy", "milp", "best:"):
            assert token in out

    def test_sweep_rejects_unknown_method(self, qkp_file):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["sweep", str(qkp_file), "--methods", "saim,quantum"])

    def test_sweep_rejects_unknown_backend(self, qkp_file):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["sweep", str(qkp_file), "--backends", "pbit,gpu"])

    def test_sweep_rejects_bad_replicas(self, qkp_file):
        with pytest.raises(SystemExit, match=">= 1"):
            main(["sweep", str(qkp_file), "--replicas", "0,2"])

    def test_sweep_rejects_malformed_replicas(self, qkp_file):
        with pytest.raises(SystemExit, match="malformed"):
            main(["sweep", str(qkp_file), "--replicas", "1,two"])

    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for token in ("methods", "backends", "saim", "greedy", "milp",
                      "pbit", "backend-free"):
            assert token in out

    def test_solve_method_greedy(self, qkp_file, capsys):
        assert main(["solve", str(qkp_file), "--method", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "greedy[-]" in out
        assert "best profit" in out

    def test_solve_method_exhaustive(self, qkp_file, capsys):
        assert main(["solve", str(qkp_file), "--method", "exhaustive"]) == 0
        assert "exhaustive[-]" in capsys.readouterr().out

    def test_solve_method_milp_mkp(self, mkp_file, capsys):
        assert main(["solve", str(mkp_file), "--method", "milp"]) == 0
        assert "milp[-]" in capsys.readouterr().out

    def test_solve_method_saim_with_backend(self, qkp_file, capsys):
        code = main(["solve", str(qkp_file), "--method", "saim",
                     "--backend", "metropolis", "--replicas", "2",
                     "--iterations", "30", "--mcs", "100"])
        assert code in (0, 1)
        assert "saim[metropolis]" in capsys.readouterr().out

    def test_method_and_solver_mutually_exclusive(self, qkp_file):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["solve", str(qkp_file), "--method", "greedy",
                  "--solver", "saim"])

    def test_unknown_method_rejected(self, qkp_file):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["solve", str(qkp_file), "--method", "quantum"])

    def test_backend_free_method_rejects_backend_flags(self, qkp_file):
        with pytest.raises(SystemExit, match="backend-free"):
            main(["solve", str(qkp_file), "--method", "greedy",
                  "--backend", "pbit"])
        with pytest.raises(SystemExit, match="backend-free"):
            main(["solve", str(qkp_file), "--method", "greedy",
                  "--replicas", "2"])

    def test_backend_free_method_rejects_budget_flags(self, qkp_file):
        """--iterations/--mcs must not be silently dropped for methods
        that have no annealing budget."""
        with pytest.raises(SystemExit, match="--iterations does not apply"):
            main(["solve", str(qkp_file), "--method", "greedy",
                  "--iterations", "500"])
        with pytest.raises(SystemExit, match="--mcs does not apply"):
            main(["solve", str(qkp_file), "--method", "milp",
                  "--mcs", "200"])

    def test_solve_saim_mkp(self, mkp_file, capsys):
        code = main(["solve", str(mkp_file), "--solver", "saim",
                     "--iterations", "60", "--mcs", "150"])
        out = capsys.readouterr().out
        assert "SAIM penalty P" in out
        # Feasibility is not guaranteed at this tiny budget; both exits valid.
        assert code in (0, 1)


class TestSweepStrategyFlag:
    @pytest.fixture
    def qkp_file(self, tmp_path):
        path = tmp_path / "small.qkp"
        main(["generate-qkp", str(path), "--items", "14", "--seed", "5"])
        return path

    def test_fused_single_cell_grid(self, qkp_file, capsys):
        code = main(["sweep", str(qkp_file), "--backends", "pbit",
                     "--replicas", "1", "--strategy", "fused",
                     "--iterations", "15", "--mcs", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy" in out and "fused" in out

    def test_fused_rejects_heterogeneous_grid(self, qkp_file):
        with pytest.raises(SystemExit, match="shareable"):
            main(["sweep", str(qkp_file), "--backends", "pbit,metropolis",
                  "--strategy", "fused", "--iterations", "10",
                  "--mcs", "60"])

    def test_auto_strategy_runs(self, qkp_file, capsys):
        code = main(["sweep", str(qkp_file), "--backends", "pbit",
                     "--replicas", "1", "--strategy", "auto",
                     "--iterations", "15", "--mcs", "60"])
        assert code == 0
        assert "Solver sweep" in capsys.readouterr().out


class TestPlannerCommands:
    """`plan`, `solve --method auto`, `export-qubo`, and `.qubo` loading."""

    @pytest.fixture
    def qkp_file(self, tmp_path):
        path = tmp_path / "small.qkp"
        main(["generate-qkp", str(path), "--items", "14", "--seed", "5"])
        return path

    def test_plan_heuristic_fallback(self, qkp_file, capsys):
        # The suite env disables the host model (REPRO_PERF_MODEL=""), so
        # the decision degrades to the heuristic ladder rung.
        assert main(["plan", str(qkp_file)]) == 0
        out = capsys.readouterr().out
        assert "features: kind=quadratic n=" in out
        assert "fingerprint=" in out
        assert "plan: backend=pbit kernel=lockstep" in out
        assert "heuristic fallback" in out

    def test_plan_with_model_prints_candidate_table(self, qkp_file, tmp_path,
                                                    capsys):
        from repro.planner import PerfModel

        model_path = tmp_path / "perf_model.json"
        PerfModel({
            "pbit:lockstep:float64": [1.0, 0, 0, 0, 0],
            "chromatic:csr:float64": [1e-9, 0, 0, 0, 0],
        }).save(model_path)
        assert main(["plan", str(qkp_file), "--model-path",
                     str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "plan: backend=chromatic storage=csr" in out
        assert "<- chosen" in out
        assert "chromatic:csr:float64" in out

    def test_plan_missing_model_rejected(self, qkp_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["plan", str(qkp_file), "--model-path",
                  str(tmp_path / "absent.json")])

    def test_solve_method_auto(self, qkp_file, capsys):
        code = main(["solve", str(qkp_file), "--method", "auto",
                     "--iterations", "30", "--mcs", "100"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "auto[" in out
        assert "plan: backend=pbit kernel=lockstep" in out
        assert "(source: heuristic)" in out

    def test_model_path_requires_method_auto(self, qkp_file, tmp_path):
        with pytest.raises(SystemExit, match="--method auto only"):
            main(["solve", str(qkp_file), "--model-path",
                  str(tmp_path / "model.json")])
        with pytest.raises(SystemExit, match="--method auto only"):
            main(["solve", str(qkp_file), "--method", "saim",
                  "--model-path", str(tmp_path / "model.json"),
                  "--iterations", "10", "--mcs", "50"])

    def test_export_qubo_then_solve_round_trip(self, qkp_file, tmp_path,
                                               capsys):
        qubo_path = tmp_path / "small.qubo"
        assert main(["export-qubo", str(qkp_file), str(qubo_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "slack" in out
        assert qubo_path.is_file()

        from repro.ising.qubo_io import read_qubo

        model = read_qubo(qubo_path)
        assert model.num_variables > 14  # decision + slack bits

        code = main(["solve", str(qubo_path), "--method", "auto",
                     "--iterations", "30", "--mcs", "100"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "best objective" in out or "no feasible sample" in out

    def test_export_qubo_rejects_poly(self, tmp_path):
        sat_path = tmp_path / "inst.json"
        main(["generate-max3sat", str(sat_path), "--variables", "12",
              "--clauses", "40", "--seed", "2"])
        with pytest.raises(SystemExit, match="quadratic-only"):
            main(["export-qubo", str(sat_path), str(tmp_path / "out.qubo")])
