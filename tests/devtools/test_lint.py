"""Tests for reprolint (repro.devtools.lint): AST rules, deep lint,
baseline semantics, CLI exit codes, and the self-clean gate.

Every AST rule gets one positive fixture (the violation fires) and one
negative fixture (the compliant idiom stays quiet), pinning the rules to
the contracts they encode rather than to incidental implementation
details.  The deep-lint tests poke a synthetic bad entry into the real
registry and restore it afterwards.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro.api as api
from repro.devtools.lint import (
    LintConfig,
    apply_baseline,
    available_deep_checks,
    available_rules,
    load_baseline,
    load_config,
    rule_info,
    run_lint,
    save_baseline,
)
from repro.devtools.lint.__main__ import main as lint_main
from repro.devtools.lint.deep import (
    DeepContext,
    check_docstring_accuracy,
    check_factory_signatures,
    run_deep_checks,
)
from repro.devtools.lint.engine import lint_file, render_json

REPO_ROOT = Path(__file__).resolve().parents[2]


# --------------------------------------------------------------------------
# Harness: run one rule over a source snippet.

def _lint_snippet(tmp_path, rule_id, source, relpath="mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    config = LintConfig(
        repo_root=tmp_path, baseline_path=tmp_path / "baseline.json"
    )
    findings, parse_error = lint_file(path, config, [rule_id])
    assert parse_error is None
    return findings


#: rule id -> (relpath, violating snippet, compliant snippet).
FIXTURES = {
    "RPL001": (
        "mod.py",
        """
        import numpy as np

        def jitter(x):
            return x + np.random.rand(*x.shape)
        """,
        """
        import numpy as np
        from repro.utils.rng import ensure_rng

        def jitter(x, rng=None):
            rng = ensure_rng(rng)
            return x + rng.random(x.shape)
        """,
    ),
    "RPL002": (
        "ising/kernel.py",
        """
        import time

        def anneal(machine, steps):
            start = time.perf_counter()
            for _ in range(steps):
                machine.step()
            return time.perf_counter() - start
        """,
        """
        def anneal(machine, steps):
            for _ in range(steps):
                machine.step()
            return machine.energy()
        """,
    ),
    "RPL003": (
        "mod.py",
        """
        import numpy as np

        class Machine:
            def set_fields(self, fields):
                self._fields = np.asarray(fields)
        """,
        """
        import numpy as np

        class Machine:
            def set_fields(self, fields):
                fields = np.asarray(fields)
                self._fields[...] = fields
        """,
    ),
    "RPL004": (
        "mod.py",
        """
        import numpy as np

        def load(x):
            return np.asarray(x).astype(np.float32)
        """,
        """
        import numpy as np

        def load(x):
            return np.asarray(x, dtype=np.float32)
        """,
    ),
    "RPL005": (
        "mod.py",
        """
        import numpy as np

        def account(J, s):
            energy = np.einsum("i,ij,j->", s, J, s, dtype=np.float32)
            return energy
        """,
        """
        import numpy as np

        def account(J, s):
            energy = np.einsum("i,ij,j->", s, J, s, dtype=np.float64)
            return energy
        """,
    ),
    "RPL006": (
        "mod.py",
        """
        def solve(problem, options={}):
            return options
        """,
        """
        def solve(problem, options=None):
            if options is None:
                options = {}
            return options
        """,
    ),
    "RPL007": (
        "mod.py",
        """
        def report(solver):
            return solver.finish(detail={"best": lambda: 0})
        """,
        """
        def report(solver):
            return solver.finish(detail={"best": 0.0})
        """,
    ),
    "RPL008": (
        "mod.py",
        """
        def load(path):
            try:
                return open(path).read()
            except OSError:
                pass
        """,
        """
        def load(path, errors):
            try:
                return open(path).read()
            except OSError as error:
                errors.append(error)
                return None
        """,
    ),
}


def test_every_registered_rule_has_fixtures():
    assert set(FIXTURES) == set(available_rules())


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_fires_on_violation(tmp_path, rule_id):
    relpath, bad, _ = FIXTURES[rule_id]
    findings = _lint_snippet(tmp_path, rule_id, bad, relpath)
    assert findings, f"{rule_id} missed its positive fixture"
    assert all(f.rule == rule_id for f in findings)
    assert all(f.line > 0 and f.snippet for f in findings)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_quiet_on_compliant_code(tmp_path, rule_id):
    relpath, _, good = FIXTURES[rule_id]
    findings = _lint_snippet(tmp_path, rule_id, good, relpath)
    assert findings == [], f"{rule_id} false-positived: {findings}"


def test_rpl002_scoped_to_ising_paths(tmp_path):
    # The same wall-clock read outside ising/ is legal (report plumbing).
    _, bad, _ = FIXTURES["RPL002"]
    assert _lint_snippet(tmp_path, "RPL002", bad, "runtime/executor.py") == []


def test_rpl001_allows_seeded_generator_constructors(tmp_path):
    findings = _lint_snippet(tmp_path, "RPL001", """
        import numpy as np

        def make(seed):
            return np.random.default_rng(np.random.SeedSequence(seed))
        """)
    assert findings == []


def test_rpl004_flags_redundant_copy_after_astype(tmp_path):
    findings = _lint_snippet(tmp_path, "RPL004", """
        def load(x):
            return x.astype(float).copy()
        """)
    assert len(findings) == 1
    assert "redundant" in findings[0].message


def test_inline_pragma_suppresses_finding(tmp_path):
    findings = _lint_snippet(tmp_path, "RPL004", """
        import numpy as np

        def load(x):
            return np.asarray(x).astype(float)  # reprolint: disable=RPL004
        """)
    assert findings == []


def test_rule_specs_name_their_runtime_net():
    for rule_id in available_rules():
        spec = rule_info(rule_id)
        assert spec.fronts_for, f"{rule_id} must name the test it fronts for"
        assert spec.severity in ("error", "warning")


# --------------------------------------------------------------------------
# Baseline semantics: grandfather, never grow, only shrink.

def test_baseline_round_trip_and_split(tmp_path):
    _, bad, _ = FIXTURES["RPL004"]
    findings = _lint_snippet(tmp_path, "RPL004", bad)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    assert sum(baseline.values()) == len(findings)

    # Grandfathered: same findings, nothing new, nothing stale.
    split = apply_baseline(findings, baseline)
    assert split.new == [] and split.stale == []
    assert split.baselined == findings

    # A finding beyond the baseline is new (the file cannot grow).
    extra = _lint_snippet(tmp_path, "RPL006", FIXTURES["RPL006"][1])
    split = apply_baseline(findings + extra, baseline)
    assert split.new == extra and split.stale == []

    # A fixed finding leaves its entry stale (the file must shrink).
    split = apply_baseline([], baseline)
    assert split.new == [] and split.stale == sorted(
        {f.key for f in findings}
    )


def test_baseline_keys_are_line_number_free(tmp_path):
    _, bad, _ = FIXTURES["RPL004"]
    first = _lint_snippet(tmp_path, "RPL004", bad)
    shifted = _lint_snippet(tmp_path, "RPL004", "# a new comment line\n"
                            + textwrap.dedent(bad))
    assert first[0].line != shifted[0].line
    assert first[0].key == shifted[0].key


def test_stale_baseline_entry_fails_run_lint(tmp_path):
    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    config = LintConfig(
        repo_root=tmp_path, baseline_path=tmp_path / "baseline.json"
    )
    from collections import Counter
    result = run_lint([tmp_path], config, deep=False,
                      baseline=Counter({"RPL004::gone.py::x": 1}))
    assert result.stale == ["RPL004::gone.py::x"]
    assert not result.clean and result.exit_code == 1


def test_no_deep_run_does_not_stale_deep_entries(tmp_path):
    # Skipping the introspection pass must not misread its baseline
    # entries as fixed debt.
    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    config = LintConfig(
        repo_root=tmp_path, baseline_path=tmp_path / "baseline.json"
    )
    from collections import Counter
    result = run_lint([tmp_path], config, deep=False,
                      baseline=Counter({"RPD104::src/x.py::export:y": 1}))
    assert result.stale == [] and result.clean


# --------------------------------------------------------------------------
# Deep lint vs a synthetic bad registry (restored afterwards).

@pytest.fixture
def scratch_registry():
    saved = dict(api._BACKENDS)
    try:
        yield api._BACKENDS
    finally:
        api._BACKENDS.clear()
        api._BACKENDS.update(saved)


def test_deep_flags_nonuniform_factory_signature(scratch_registry):
    def bad_builder():
        def factory(model, rng=None):  # no dtype knob
            raise NotImplementedError
        return factory

    api.register_backend("badback", bad_builder,
                         description="synthetic bad backend")
    ctx = DeepContext(repo_root=REPO_ROOT)
    findings = check_factory_signatures(ctx)
    bad = [f for f in findings if f.snippet == "backend:badback"]
    assert len(bad) == 1
    assert "dtype" in bad[0].message


def test_deep_flags_ghost_knob_in_description(scratch_registry):
    def builder(real_knob=None):
        def factory(model, rng=None, dtype=None):
            raise NotImplementedError
        return factory

    api.register_backend(
        "ghostback", builder,
        description="accepts 'imaginary': a knob the builder lacks",
    )
    ctx = DeepContext(repo_root=REPO_ROOT)
    findings = check_docstring_accuracy(ctx, contracts=())
    ghost = [f for f in findings if f.snippet == "backend:ghostback"]
    assert len(ghost) == 1
    assert "imaginary" in ghost[0].message


def test_deep_docstring_accuracy_catches_drift():
    ctx = DeepContext(repo_root=REPO_ROOT)
    contracts = ((__name__, "_drifted_entry_point", ("job",)),)
    findings = check_docstring_accuracy(ctx, contracts=contracts)
    drift = [f for f in findings if f.snippet == "doc:_drifted_entry_point"]
    assert len(drift) == 1
    assert "undocumented_field" in drift[0].message

    contracts = ((__name__, "_accurate_entry_point", ("job",)),)
    findings = check_docstring_accuracy(ctx, contracts=contracts)
    assert [f for f in findings if f.snippet == "doc:_accurate_entry_point"] \
        == []


def _drifted_entry_point(job):
    """Touches the job."""
    return job.undocumented_field


def _accurate_entry_point(job):
    """Reads ``undocumented_field`` off the job (documented here)."""
    return job.undocumented_field


def test_deep_checks_run_clean_on_real_registry_modulo_baseline():
    config = load_config(repo_root=REPO_ROOT)
    baseline = load_baseline(config.baseline_path)
    findings = run_deep_checks(REPO_ROOT)
    split = apply_baseline(findings, baseline)
    assert split.new == [], [f.render() for f in split.new]


# --------------------------------------------------------------------------
# CLI: exit codes, --format json, --update-baseline.

def test_cli_exit_codes_and_update_baseline(tmp_path, capsys):
    project = tmp_path / "proj"
    project.mkdir()
    (project / "pyproject.toml").write_text(
        '[tool.reprolint]\nbaseline = "baseline.json"\ndeep = false\n',
        encoding="utf-8",
    )
    bad = project / "bad.py"
    bad.write_text(textwrap.dedent(FIXTURES["RPL004"][1]), encoding="utf-8")

    config_args = ["--config", str(project / "pyproject.toml")]
    assert lint_main([str(bad), *config_args]) == 1
    capsys.readouterr()

    # Grandfather it, then the same run is clean.
    assert lint_main([str(bad), "--update-baseline", *config_args]) == 0
    capsys.readouterr()
    assert lint_main([str(bad), *config_args]) == 0
    capsys.readouterr()

    # Fixing the file leaves the entry stale -> exit 1 again.
    bad.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(bad), *config_args]) == 1
    assert "STALE" in capsys.readouterr().out


def test_cli_json_format_is_machine_readable(tmp_path, capsys):
    project = tmp_path / "proj"
    project.mkdir()
    (project / "pyproject.toml").write_text(
        "[tool.reprolint]\ndeep = false\n", encoding="utf-8"
    )
    bad = project / "bad.py"
    bad.write_text(textwrap.dedent(FIXTURES["RPL008"][1]), encoding="utf-8")
    code = lint_main([str(bad), "--format", "json",
                      "--config", str(project / "pyproject.toml")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1 and payload["clean"] is False
    assert payload["new"][0]["rule"] == "RPL008"
    # The report carries the full rule/check table for tooling.
    assert set(available_rules()) <= set(payload["rules"])
    assert set(available_deep_checks()) <= set(payload["rules"])


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    assert lint_main(["--rules", "RPL999", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_config_rejects_bogus_rule_table(tmp_path, capsys):
    project = tmp_path / "proj"
    project.mkdir()
    (project / "pyproject.toml").write_text(
        "[tool.reprolint.rules.NOPE]\nenabled = false\n", encoding="utf-8"
    )
    code = lint_main([str(project), "--config",
                      str(project / "pyproject.toml")])
    assert code == 2
    assert "configuration error" in capsys.readouterr().err


def test_config_per_rule_ignore(tmp_path):
    project = tmp_path / "proj"
    (project / "legacy").mkdir(parents=True)
    (project / "pyproject.toml").write_text(textwrap.dedent("""
        [tool.reprolint]
        deep = false

        [tool.reprolint.rules.RPL004]
        ignore = ["legacy/*"]
    """), encoding="utf-8")
    bad = project / "legacy" / "old.py"
    bad.write_text(textwrap.dedent(FIXTURES["RPL004"][1]), encoding="utf-8")
    config = load_config(pyproject=project / "pyproject.toml")
    result = run_lint([project], config, deep=False)
    assert result.new == []


def test_repro_cli_forwards_to_reprolint(tmp_path, capsys):
    # `repro lint ...` forwards verbatim, including leading --options
    # (argparse REMAINDER alone would choke on them).
    from repro.cli import main as cli_main
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RPL001" in out and "RPD104" in out

    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent(FIXTURES["RPL004"][1]), encoding="utf-8")
    (tmp_path / "pyproject.toml").write_text(
        "[tool.reprolint]\ndeep = false\n", encoding="utf-8"
    )
    args = [str(bad), "--config", str(tmp_path / "pyproject.toml")]
    assert cli_main(["lint", *args]) == 1
    assert cli_main(["lint", "--", *args]) == 1  # `--` separator accepted


# --------------------------------------------------------------------------
# The gate itself: src/repro is clean modulo the committed baseline.

def test_src_repro_is_clean_modulo_committed_baseline():
    config = load_config(repo_root=REPO_ROOT)
    result = run_lint([REPO_ROOT / "src" / "repro"], config)
    assert result.parse_errors == []
    assert result.stale == [], result.stale
    assert result.new == [], "\n".join(f.render() for f in result.new)
    assert result.clean and result.exit_code == 0


def test_committed_baseline_contains_only_known_debt():
    # The grandfather file carries exactly the dead-export debt class
    # (RPD104); any AST-rule entry would mean a fixable violation was
    # baselined instead of fixed.
    config = load_config(repo_root=REPO_ROOT)
    baseline = load_baseline(config.baseline_path)
    assert baseline, "committed baseline missing or empty"
    assert all(key.startswith("RPD104::") for key in baseline)


def test_render_json_round_trips_findings(tmp_path):
    _, bad, _ = FIXTURES["RPL001"]
    findings = _lint_snippet(tmp_path, "RPL001", bad)
    from repro.devtools.lint.engine import LintResult
    result = LintResult(findings=findings, new=findings, files_checked=1)
    payload = json.loads(render_json(result))
    assert payload["files_checked"] == 1
    assert [f["rule"] for f in payload["new"]] == ["RPL001"]
