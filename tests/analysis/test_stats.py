"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import accuracies, accuracy_percent, quartile_summary


class TestAccuracy:
    def test_optimum_is_100(self):
        assert accuracy_percent(-50.0, -50.0) == pytest.approx(100.0)

    def test_worse_cost_is_below_100(self):
        assert accuracy_percent(-40.0, -50.0) == pytest.approx(80.0)

    def test_vectorized(self):
        np.testing.assert_allclose(
            accuracies([-50.0, -25.0], -50.0), [100.0, 50.0]
        )

    def test_rejects_zero_optimum(self):
        with pytest.raises(ValueError):
            accuracy_percent(-1.0, 0.0)

    def test_rejects_positive_optimum(self):
        with pytest.raises(ValueError):
            accuracy_percent(-1.0, 1.0)
        with pytest.raises(ValueError):
            accuracies([-1.0], 1.0)


class TestQuartileSummary:
    def test_known_values(self):
        summary = quartile_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.minimum == 1.0
        assert summary.median == 3.0
        assert summary.maximum == 5.0
        assert summary.q1 == 2.0
        assert summary.q3 == 4.0
        assert summary.count == 5

    def test_iqr(self):
        summary = quartile_summary([0.0, 10.0])
        assert summary.interquartile_range == pytest.approx(
            summary.q3 - summary.q1
        )

    def test_single_value(self):
        summary = quartile_summary([7.0])
        assert summary.minimum == summary.maximum == summary.median == 7.0
        assert summary.interquartile_range == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quartile_summary([])
