"""Tests for repro.analysis.tables."""


import pytest

from repro.analysis.tables import format_percent, render_table


class TestFormatPercent:
    def test_plain(self):
        assert format_percent(99.25) == "99.2"

    def test_decimals(self):
        assert format_percent(99.25, decimals=2) == "99.25"

    def test_nan_is_dash(self):
        assert format_percent(float("nan")) == "-"

    def test_none_is_dash(self):
        assert format_percent(None) == "-"


class TestRenderTable:
    def test_contains_all_cells(self):
        table = render_table(["a", "b"], [["x", "1"], ["y", "22"]])
        for token in ("a", "b", "x", "y", "22"):
            assert token in table

    def test_title(self):
        table = render_table(["a"], [["1"]], title="Table II")
        assert table.startswith("Table II")

    def test_column_alignment(self):
        table = render_table(["col", "n"], [["long-name", "1"]])
        lines = table.splitlines()
        # All lines share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_numeric_cells_stringified(self):
        table = render_table(["v"], [[1.5], [2]])
        assert "1.5" in table and "2" in table
