"""Tests for repro.analysis.figures."""

import numpy as np
import pytest

from repro.analysis.figures import FigureSeries, ascii_plot, write_csv


class TestFigureSeries:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FigureSeries("bad", np.arange(3), np.arange(4))

    def test_accepts_lists(self):
        series = FigureSeries("ok", [1, 2], [3, 4])
        assert series.x.dtype == float


class TestWriteCsv:
    def test_roundtrippable_content(self, tmp_path):
        series = [
            FigureSeries("cost", [0, 1], [-5.0, -6.0]),
            FigureSeries("lambda", [0, 1], [0.0, 0.5]),
        ]
        path = tmp_path / "fig" / "fig3.csv"
        write_csv(series, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "label,x,y"
        assert len(lines) == 5
        assert lines[1] == "cost,0,-5"

    def test_creates_parent_dirs(self, tmp_path):
        write_csv([FigureSeries("s", [0], [1])], tmp_path / "a" / "b" / "c.csv")
        assert (tmp_path / "a" / "b" / "c.csv").exists()


class TestAsciiPlot:
    def test_contains_label_and_range(self):
        series = FigureSeries("trace", np.arange(50), np.linspace(-10, -1, 50))
        art = ascii_plot(series)
        assert "trace" in art
        assert "*" in art

    def test_empty_series(self):
        art = ascii_plot(FigureSeries("empty", [], []))
        assert "empty" in art

    def test_all_nan_series(self):
        art = ascii_plot(FigureSeries("nan", [0, 1], [np.nan, np.nan]))
        assert "no finite" in art

    def test_constant_series(self):
        art = ascii_plot(FigureSeries("flat", [0, 1, 2], [5.0, 5.0, 5.0]))
        assert "*" in art
