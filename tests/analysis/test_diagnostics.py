"""Tests for sampler diagnostics (repro.analysis.diagnostics)."""

import numpy as np
import pytest

from repro.analysis.diagnostics import (
    boltzmann_distance,
    empirical_distribution,
    energy_autocorrelation,
    flip_rate_profile,
    integrated_autocorrelation_time,
)
from repro.core.schedule import linear_beta_schedule
from repro.ising.pbit import PBitMachine
from tests.helpers import random_ising


class TestFlipRates:
    def test_rates_fall_along_anneal(self):
        model = random_ising(12, rng=0)
        machine = PBitMachine(model, rng=0)
        rates = flip_rate_profile(machine, linear_beta_schedule(10.0, 60))
        # High-temperature start flips ~half the spins; cold end flips few.
        assert rates[:5].mean() > rates[-5:].mean()
        assert rates[-1] <= 0.5

    def test_rates_bounded(self):
        machine = PBitMachine(random_ising(8, rng=1), rng=0)
        rates = flip_rate_profile(machine, linear_beta_schedule(5.0, 30))
        assert np.all(rates >= 0) and np.all(rates <= 1)

    def test_needs_two_sweeps(self):
        machine = PBitMachine(random_ising(4, rng=2), rng=0)
        with pytest.raises(ValueError):
            flip_rate_profile(machine, np.array([1.0]))


class TestAutocorrelation:
    def test_iid_noise_has_low_autocorrelation(self):
        rng = np.random.default_rng(0)
        rhos = energy_autocorrelation(rng.normal(size=5000), max_lag=10)
        assert np.max(np.abs(rhos)) < 0.1

    def test_slow_signal_has_high_autocorrelation(self):
        slow = np.sin(np.linspace(0, 4 * np.pi, 2000))
        rhos = energy_autocorrelation(slow, max_lag=5)
        assert rhos[0] > 0.9

    def test_constant_trace_is_zero(self):
        rhos = energy_autocorrelation(np.full(100, 3.0), max_lag=5)
        np.testing.assert_array_equal(rhos, np.zeros(5))

    def test_tau_of_iid_near_one(self):
        rng = np.random.default_rng(1)
        tau = integrated_autocorrelation_time(rng.normal(size=5000))
        assert tau == pytest.approx(1.0, abs=0.3)

    def test_tau_grows_for_correlated_chains(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(size=3000)
        smooth = np.convolve(noise, np.ones(20) / 20, mode="valid")
        assert integrated_autocorrelation_time(smooth) > 3.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            energy_autocorrelation(np.array([1.0]))


class TestDistributionChecks:
    def test_empirical_distribution_sums_to_one(self):
        rng = np.random.default_rng(0)
        samples = rng.choice([-1.0, 1.0], size=(500, 4))
        dist = empirical_distribution(samples)
        assert dist.shape == (16,)
        assert dist.sum() == pytest.approx(1.0)

    def test_boltzmann_distance_of_good_sampler_is_small(self):
        model = random_ising(4, rng=3)
        machine = PBitMachine(model, rng=0)
        beta = 0.5
        samples = machine.sample_boltzmann(beta, num_sweeps=15000, burn_in=500)
        assert boltzmann_distance(model, samples, beta) < 0.05

    def test_boltzmann_distance_detects_wrong_beta(self):
        model = random_ising(4, rng=4)
        machine = PBitMachine(model, rng=0)
        samples = machine.sample_boltzmann(0.2, num_sweeps=8000, burn_in=200)
        near = boltzmann_distance(model, samples, 0.2)
        far = boltzmann_distance(model, samples, 5.0)
        assert far > near

    def test_beta_validation(self):
        model = random_ising(3, rng=5)
        with pytest.raises(ValueError):
            boltzmann_distance(model, np.ones((10, 3)), 0.0)

    def test_samples_must_be_2d(self):
        with pytest.raises(ValueError):
            empirical_distribution(np.ones(5))
