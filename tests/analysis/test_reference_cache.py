"""Tests for the best-known-value cache (repro.analysis.reference_cache)."""

import json

import pytest

from repro.analysis.reference_cache import (
    ReferenceCache,
    cached_reference_qkp_optimum,
)
from repro.baselines.exact_qkp import exact_qkp_bruteforce
from repro.problems.generators import generate_qkp


class TestReferenceCache:
    def test_empty_cache(self, tmp_path):
        cache = ReferenceCache(tmp_path / "ref.json")
        assert len(cache) == 0
        assert cache.get("missing") is None
        assert "missing" not in cache

    def test_update_persists(self, tmp_path):
        path = tmp_path / "ref.json"
        ReferenceCache(path).update("100-25-1", 18558.0)
        reopened = ReferenceCache(path)
        assert reopened.get("100-25-1") == 18558.0
        assert "100-25-1" in reopened

    def test_monotone_updates(self, tmp_path):
        cache = ReferenceCache(tmp_path / "ref.json")
        assert cache.update("a", 100.0) == 100.0
        assert cache.update("a", 50.0) == 100.0  # never regress
        assert cache.update("a", 150.0) == 150.0

    def test_rejects_empty_name(self, tmp_path):
        cache = ReferenceCache(tmp_path / "ref.json")
        with pytest.raises(ValueError):
            cache.update("", 1.0)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {{{")
        with pytest.raises(ValueError, match="corrupt"):
            ReferenceCache(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="object"):
            ReferenceCache(path)

    def test_creates_parent_directories(self, tmp_path):
        cache = ReferenceCache(tmp_path / "deep" / "nested" / "ref.json")
        cache.update("x", 1.0)
        assert cache.path.exists()

    def test_file_is_sorted_json(self, tmp_path):
        path = tmp_path / "ref.json"
        cache = ReferenceCache(path)
        cache.update("zebra", 1.0)
        cache.update("alpha", 2.0)
        data = json.loads(path.read_text())
        assert list(data.keys()) == ["alpha", "zebra"]


class TestCachedReference:
    def test_matches_exact_on_small_instances(self, tmp_path):
        instance = generate_qkp(12, 0.5, rng=0, name="cache-test-12")
        cache = ReferenceCache(tmp_path / "ref.json")
        _, exact = exact_qkp_bruteforce(instance)
        value = cached_reference_qkp_optimum(instance, cache, rng=0)
        assert value == pytest.approx(exact)
        assert cache.get("cache-test-12") == pytest.approx(exact)

    def test_stored_better_value_wins(self, tmp_path):
        instance = generate_qkp(30, 0.5, rng=1, name="cache-test-30")
        cache = ReferenceCache(tmp_path / "ref.json")
        cache.update("cache-test-30", 10**9)  # fictitious tighter bound
        value = cached_reference_qkp_optimum(instance, cache, rng=0)
        assert value == 10**9
