"""Tests for time-to-solution metrics (repro.analysis.tts)."""

import math

import pytest

from repro.analysis.tts import (
    saim_tts_from_trace,
    success_probability,
    time_to_solution,
)
from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from tests.helpers import tiny_knapsack_problem


class TestSuccessProbability:
    def test_minimization(self):
        assert success_probability([-5, -3, -1], target=-3) == pytest.approx(2 / 3)

    def test_maximization(self):
        assert success_probability([5, 3, 1], target=3, minimize=False) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            success_probability([], target=0)


class TestTimeToSolution:
    def test_standard_formula(self):
        # p = 0.5, c = 0.99: repetitions = ln(0.01)/ln(0.5) ~ 6.64.
        estimate = time_to_solution([-1, 0], target=-1, per_run_cost=10.0)
        expected = 10.0 * math.log(0.01) / math.log(0.5)
        assert estimate.tts == pytest.approx(expected)

    def test_perfect_success_floors_at_one_run(self):
        estimate = time_to_solution([-2, -2], target=-1, per_run_cost=7.0)
        assert estimate.tts == 7.0
        assert estimate.success_probability == 1.0

    def test_zero_success_is_infinite(self):
        estimate = time_to_solution([0, 0], target=-1, per_run_cost=1.0)
        assert estimate.infinite

    def test_monotone_in_success_probability(self):
        low = time_to_solution([-1, 0, 0, 0], target=-1, per_run_cost=1.0)
        high = time_to_solution([-1, -1, 0, 0], target=-1, per_run_cost=1.0)
        assert high.tts < low.tts

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            time_to_solution([-1], target=-1, per_run_cost=1.0, confidence=1.0)

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            time_to_solution([-1], target=-1, per_run_cost=0.0)


class TestSaimTts:
    def test_from_trace(self):
        config = SaimConfig(num_iterations=30, mcs_per_run=100)
        result = SelfAdaptiveIsingMachine(config).solve(
            tiny_knapsack_problem(), rng=0
        )
        estimate = saim_tts_from_trace(result, target_cost=-8.0)
        assert estimate.runs_observed == 30
        assert estimate.per_run_cost == 100.0
        if result.found_feasible and result.best_cost <= -8.0:
            assert not estimate.infinite

    def test_infeasible_iterations_never_count(self):
        config = SaimConfig(num_iterations=10, mcs_per_run=50)
        result = SelfAdaptiveIsingMachine(config).solve(
            tiny_knapsack_problem(), rng=1
        )
        estimate = saim_tts_from_trace(result, target_cost=-8.0)
        assert estimate.success_probability <= result.feasible_ratio + 1e-9

    def test_requires_trace(self):
        config = SaimConfig(num_iterations=5, mcs_per_run=30, record_trace=False)
        result = SelfAdaptiveIsingMachine(config).solve(
            tiny_knapsack_problem(), rng=0
        )
        with pytest.raises(ValueError, match="trace"):
            saim_tts_from_trace(result, target_cost=-8.0)
