"""Tests for the shared experiment harness (repro.analysis.experiments)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    Scale,
    current_scale,
    default_max_workers,
    mkp_saim_config,
    qkp_saim_config,
    run_mkp_suite,
    run_qkp_suite,
    run_saim_on_mkp,
    run_saim_on_qkp,
    table2_suite,
    table3_suite,
    table4_suite,
    table5_suite,
)
from repro.problems.generators import generate_mkp, generate_qkp

SMOKE = Scale(
    name="unit",
    qkp_sizes={100: 16, 200: 16, 300: 16},
    mkp_sizes={100: 12, 250: 12},
    instances_per_group=1,
    iteration_factor=0.01,
    mcs_factor=0.1,
)


class TestScale:
    def test_env_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "ci"

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert current_scale().name == "full"

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()

    def test_full_scale_keeps_paper_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        scale = current_scale()
        assert scale.qkp_size(300) == 300
        assert scale.mkp_size(250) == 250

    def test_configs_scale_budgets(self):
        config = qkp_saim_config(SMOKE)
        assert config.num_iterations == 20  # 2000 * 0.01
        assert config.mcs_per_run == 100  # 1000 * 0.1
        mkp = mkp_saim_config(SMOKE)
        assert mkp.num_iterations == 50  # 5000 * 0.01
        # eta is budget-compensated: 0.05 / 0.01.
        assert mkp.eta == pytest.approx(5.0)
        assert mkp.beta_max == 50.0  # other hyper-parameters untouched


class TestSuites:
    def test_table2_densities(self):
        suite = table2_suite(SMOKE)
        assert len(suite) == 2
        names = [instance.name for instance in suite]
        assert any("-25-" in name for name in names)
        assert any("-50-" in name for name in names)

    def test_table3_has_four_density_groups(self):
        suite = table3_suite(SMOKE)
        assert len(suite) == 4

    def test_table4_sizes(self):
        for instance in table4_suite(SMOKE):
            assert instance.num_items == 16

    def test_table5_groups(self):
        suite = table5_suite(SMOKE)
        constraint_counts = sorted({i.num_constraints for i in suite})
        assert constraint_counts == [5, 10]


class TestRunners:
    def test_qkp_record_fields(self):
        instance = generate_qkp(14, 0.5, rng=0, name="unit-qkp")
        record = run_saim_on_qkp(instance, qkp_saim_config(SMOKE), seed=0)
        assert record.instance_name == "unit-qkp"
        assert record.total_mcs == 20 * 100
        assert 0 <= record.feasible_percent <= 100
        if not np.isnan(record.best_accuracy):
            assert record.best_accuracy <= 100.0 + 1e-9
            assert record.average_accuracy <= record.best_accuracy + 1e-9

    def test_qkp_reference_updated_by_saim(self):
        # Passing a deliberately weak reference must not yield accuracy > 100.
        instance = generate_qkp(14, 0.5, rng=1)
        record = run_saim_on_qkp(
            instance, qkp_saim_config(SMOKE), seed=1, reference_profit=1.0
        )
        if not np.isnan(record.best_accuracy):
            assert record.best_accuracy <= 100.0 + 1e-9

    def test_mkp_record_fields(self):
        instance = generate_mkp(12, 3, rng=2, name="unit-mkp")
        record = run_saim_on_mkp(instance, mkp_saim_config(SMOKE), seed=2)
        assert record.instance_name == "unit-mkp"
        assert record.optimum_profit > 0
        assert record.exact_seconds > 0
        if not np.isnan(record.best_accuracy):
            assert record.best_accuracy <= 100.0 + 1e-9


class TestSuiteRunners:
    """The executor-backed suite runners must reproduce the serial loops."""

    def test_qkp_suite_matches_per_instance_runner(self):
        instances = [generate_qkp(12, 0.5, rng=i) for i in range(2)]
        config = qkp_saim_config(SMOKE)
        suite_records = run_qkp_suite(
            instances, config, seeds=[10, 11], max_workers=1
        )
        for instance, seed, record in zip(instances, (10, 11), suite_records):
            direct = run_saim_on_qkp(instance, config, seed=seed)
            assert record.instance_name == direct.instance_name
            assert record.best_accuracy == direct.best_accuracy or (
                np.isnan(record.best_accuracy)
                and np.isnan(direct.best_accuracy)
            )
            assert record.feasible_percent == direct.feasible_percent
            assert record.reference_profit == direct.reference_profit

    def test_qkp_suite_default_seeds(self):
        instances = [generate_qkp(10, 0.5, rng=7)]
        records = run_qkp_suite(instances, qkp_saim_config(SMOKE))
        assert len(records) == 1

    def test_qkp_suite_rejects_seed_mismatch(self):
        instances = [generate_qkp(10, 0.5, rng=7)]
        with pytest.raises(ValueError, match="one seed per instance"):
            run_qkp_suite(instances, qkp_saim_config(SMOKE), seeds=[1, 2])

    def test_mkp_suite_matches_per_instance_runner(self):
        instance = generate_mkp(10, 2, rng=4, name="suite-mkp")
        config = mkp_saim_config(SMOKE)
        (record,) = run_mkp_suite([instance], config, seeds=[3], max_workers=1)
        direct = run_saim_on_mkp(instance, config, seed=3)
        assert record.optimum_profit == direct.optimum_profit
        assert record.feasible_percent == direct.feasible_percent

    def test_repro_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_max_workers() == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_max_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_max_workers()
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="integer"):
            default_max_workers()
