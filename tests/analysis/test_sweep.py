"""Tests for the parameter-sweep helper (repro.analysis.sweep)."""

import pytest

from repro.analysis.sweep import ParameterSweep, SweepPoint


def quadratic_runner(x, y):
    return {"score": -(x - 2) ** 2 - (y - 3) ** 2, "sum": float(x + y)}


class TestParameterSweep:
    def test_num_points(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1, 2], "y": [1, 2, 3]})
        assert sweep.num_points == 6

    def test_run_covers_grid(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1, 2], "y": [3]})
        points = sweep.run()
        assert len(points) == 2
        assert {p.params["x"] for p in points} == {1, 2}
        assert all(p.params["y"] == 3 for p in points)

    def test_metrics_recorded(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [2], "y": [3]})
        (point,) = sweep.run()
        assert point.metrics["score"] == 0
        assert point.metrics["sum"] == 5.0

    def test_best_maximize(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [0, 1, 2, 3], "y": [3]})
        best = sweep.best(sweep.run(), "score")
        assert best.params["x"] == 2

    def test_best_minimize(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [0, 1, 2], "y": [0, 3]})
        worst = sweep.best(sweep.run(), "score", maximize=False)
        assert worst.params == {"x": 0, "y": 0}

    def test_render_contains_params_and_metrics(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [2]})
        table = sweep.render(sweep.run(), title="sweep test")
        assert "sweep test" in table
        assert "score" in table and "sum" in table

    def test_render_metric_subset(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [2]})
        table = sweep.render(sweep.run(), metrics=["sum"])
        assert "sum" in table and "score" not in table

    def test_rejects_bad_runner(self):
        with pytest.raises(TypeError):
            ParameterSweep("not callable", {"x": [1]})

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            ParameterSweep(quadratic_runner, {})
        with pytest.raises(ValueError):
            ParameterSweep(quadratic_runner, {"x": []})

    def test_rejects_non_dict_metrics(self):
        sweep = ParameterSweep(lambda x: 42, {"x": [1]})
        with pytest.raises(TypeError, match="dict"):
            sweep.run()

    def test_render_empty_rejected(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [1]})
        with pytest.raises(ValueError):
            sweep.render([])

    def test_best_missing_metric_rejected(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [1]})
        with pytest.raises(ValueError):
            sweep.best(sweep.run(), "nonexistent")


class TestSweepWithSolver:
    def test_saim_eta_sweep(self):
        """End-to-end: sweep SAIM's eta on a tiny problem."""
        from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
        from tests.helpers import tiny_knapsack_problem

        def runner(eta):
            config = SaimConfig(num_iterations=15, mcs_per_run=60, eta=eta)
            result = SelfAdaptiveIsingMachine(config).solve(
                tiny_knapsack_problem(), rng=0
            )
            return {
                "best_cost": result.best_cost,
                "feasible": result.feasible_ratio,
            }

        sweep = ParameterSweep(runner, {"eta": [1.0, 5.0, 20.0]})
        points = sweep.run()
        assert len(points) == 3
        best = sweep.best(points, "best_cost", maximize=False)
        assert best.metrics["best_cost"] <= -8.0 + 1e-9
