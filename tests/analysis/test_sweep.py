"""Tests for the parameter-sweep helpers (repro.analysis.sweep)."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    BackendSweep,
    ParameterSweep,
    SweepPoint,
    sweep_backends,
)


def quadratic_runner(x, y):
    return {"score": -(x - 2) ** 2 - (y - 3) ** 2, "sum": float(x + y)}


class TestParameterSweep:
    def test_num_points(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1, 2], "y": [1, 2, 3]})
        assert sweep.num_points == 6

    def test_run_covers_grid(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1, 2], "y": [3]})
        points = sweep.run()
        assert len(points) == 2
        assert {p.params["x"] for p in points} == {1, 2}
        assert all(p.params["y"] == 3 for p in points)

    def test_metrics_recorded(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [2], "y": [3]})
        (point,) = sweep.run()
        assert point.metrics["score"] == 0
        assert point.metrics["sum"] == 5.0

    def test_best_maximize(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [0, 1, 2, 3], "y": [3]})
        best = sweep.best(sweep.run(), "score")
        assert best.params["x"] == 2

    def test_best_minimize(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [0, 1, 2], "y": [0, 3]})
        worst = sweep.best(sweep.run(), "score", maximize=False)
        assert worst.params == {"x": 0, "y": 0}

    def test_render_contains_params_and_metrics(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [2]})
        table = sweep.render(sweep.run(), title="sweep test")
        assert "sweep test" in table
        assert "score" in table and "sum" in table

    def test_render_metric_subset(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [2]})
        table = sweep.render(sweep.run(), metrics=["sum"])
        assert "sum" in table and "score" not in table

    def test_rejects_bad_runner(self):
        with pytest.raises(TypeError):
            ParameterSweep("not callable", {"x": [1]})

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            ParameterSweep(quadratic_runner, {})
        with pytest.raises(ValueError):
            ParameterSweep(quadratic_runner, {"x": []})

    def test_rejects_non_dict_metrics(self):
        sweep = ParameterSweep(lambda x: 42, {"x": [1]})
        with pytest.raises(TypeError, match="dict"):
            sweep.run()

    def test_render_empty_rejected(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [1]})
        with pytest.raises(ValueError):
            sweep.render([])

    def test_best_missing_metric_rejected(self):
        sweep = ParameterSweep(quadratic_runner, {"x": [1], "y": [1]})
        with pytest.raises(ValueError):
            sweep.best(sweep.run(), "nonexistent")


class TestNanAndNumpyMetrics:
    """Regressions: NaN points must not poison ``best``; numpy scalars must
    render like their python counterparts."""

    def points(self):
        return [
            SweepPoint(params={"x": 0}, metrics={"score": float("nan")}),
            SweepPoint(params={"x": 1}, metrics={"score": 3.0}),
            SweepPoint(params={"x": 2}, metrics={"score": np.float64("nan")}),
            SweepPoint(params={"x": 3}, metrics={"score": -1.0}),
        ]

    def sweep(self):
        return ParameterSweep(lambda x: {"score": 0.0}, {"x": [0, 1, 2, 3]})

    def test_nan_never_wins_maximize(self):
        # Pre-fix: max() with a NaN key can return a NaN point depending
        # on comparison order.
        best = self.sweep().best(self.points(), "score", maximize=True)
        assert best.params["x"] == 1

    def test_nan_never_wins_minimize(self):
        best = self.sweep().best(self.points(), "score", maximize=False)
        assert best.params["x"] == 3

    def test_nan_first_point_does_not_shadow(self):
        points = self.points()[:2]  # NaN first, then the real value
        assert self.sweep().best(points, "score").params["x"] == 1

    def test_all_nan_rejected(self):
        points = [
            SweepPoint(params={"x": 0}, metrics={"score": float("nan")}),
        ]
        with pytest.raises(ValueError, match="comparable"):
            self.sweep().best(points, "score")

    def test_render_formats_numpy_float_like_float(self):
        sweep = ParameterSweep(lambda x: {}, {"x": [0]})
        points = [
            SweepPoint(params={"x": 0},
                       metrics={"a": np.float64(1.23456789),
                                "b": 1.23456789}),
        ]
        table = sweep.render(points, metrics=["a", "b"])
        row = table.splitlines()[-1]
        cells = [cell.strip() for cell in row.split("|")]
        assert cells[1] == cells[2] == "1.235"

    def test_render_formats_numpy_int_like_int(self):
        sweep = ParameterSweep(lambda x: {}, {"x": [0]})
        points = [
            SweepPoint(params={"x": 0}, metrics={"n": np.int64(1200)}),
        ]
        table = sweep.render(points, metrics=["n"])
        assert "1200" in table
        assert "np.int64" not in table


class TestBackendSweep:
    FAST = dict(num_iterations=8, mcs_per_run=50, eta=5.0,
                eta_decay="sqrt", normalize_step=True)

    def test_grid_and_jobs(self):
        from tests.helpers import tiny_knapsack_problem

        sweep = BackendSweep(
            tiny_knapsack_problem(), backends=["pbit", "quantized"],
            replicas=[1, 2], rng=0,
            backend_options={"quantized": {"bits": 10}}, **self.FAST,
        )
        jobs = sweep.jobs()
        assert sweep.num_points == len(jobs) == 4
        assert [(j.backend, j.num_replicas) for j in jobs] == [
            ("pbit", 1), ("pbit", 2), ("quantized", 1), ("quantized", 2),
        ]
        assert jobs[2].backend_options == {"bits": 10}
        assert jobs[0].backend_options is None

    def test_rejects_options_for_unknown_backend(self):
        from tests.helpers import tiny_knapsack_problem

        with pytest.raises(ValueError, match="not in the sweep"):
            BackendSweep(
                tiny_knapsack_problem(), backends=["pbit"],
                backend_options={"quantized": {"bits": 8}},
            )

    def test_sweep_backends_one_call_table(self):
        from tests.helpers import tiny_knapsack_problem

        report = sweep_backends(
            tiny_knapsack_problem(), backends=["pbit", "metropolis"],
            replicas=[1, 2], rng=0, title="backend comparison", **self.FAST,
        )
        assert len(report.points) == 4
        for line in ("backend comparison", "backend", "replicas",
                     "best_cost", "feasible_pct", "total_mcs", "seconds"):
            assert line in report.table
        # Rows appear in grid order with per-point accounting.
        by_params = {
            (p.params["backend"], p.params["replicas"]): p.metrics
            for p in report.points
        }
        assert by_params[("pbit", 2)]["total_mcs"] == 8 * 2 * 50
        best = report.best()
        assert best.metrics["best_cost"] == pytest.approx(-8.0)

    def test_failed_point_raises_by_default(self):
        from repro.runtime import SolveJobError
        from tests.helpers import tiny_knapsack_problem

        sweep = BackendSweep(
            tiny_knapsack_problem(), backends=["no-such-machine"], **self.FAST
        )
        with pytest.raises(SolveJobError, match="no-such-machine"):
            sweep.run()

    def test_failed_point_becomes_nan_row_when_tolerant(self):
        from tests.helpers import tiny_knapsack_problem

        sweep = BackendSweep(
            tiny_knapsack_problem(), backends=["pbit", "no-such-machine"],
            rng=0, **self.FAST,
        )
        points = sweep.run(raise_on_error=False)
        ok, failed = points
        assert ok.metrics["best_cost"] == pytest.approx(-8.0)
        assert np.isnan(failed.metrics["best_cost"])
        assert np.isnan(failed.metrics["feasible_pct"])
        # The table still renders, with the failed cell as NaN.
        assert "nan" in sweep.render(points, metrics=["best_cost"])

    def test_run_matches_front_door(self):
        import repro
        from tests.helpers import tiny_knapsack_problem

        points = BackendSweep(
            tiny_knapsack_problem(), backends=["pbit"], replicas=[2],
            rng=4, **self.FAST,
        ).run(max_workers=1)
        direct = repro.solve(
            tiny_knapsack_problem(), num_replicas=2, rng=4, **self.FAST
        )
        assert points[0].metrics["best_cost"] == direct.best_cost

    def test_base_class_run_path_still_works(self):
        """ParameterSweep.run() on a BackendSweep drives the runner hook."""
        from tests.helpers import tiny_knapsack_problem

        sweep = BackendSweep(
            tiny_knapsack_problem(), backends=["pbit"], replicas=[1],
            rng=0, **self.FAST,
        )
        (point,) = ParameterSweep.run(sweep)
        assert point.params == {"method": "saim", "backend": "pbit",
                                "replicas": 1}
        assert point.metrics["best_cost"] == pytest.approx(-8.0)


class TestMethodAxis:
    """The method × backend × replicas grid (backend-free methods collapse
    to one row each)."""

    FAST = dict(num_iterations=8, mcs_per_run=50, eta=5.0,
                eta_decay="sqrt", normalize_step=True)

    def instance(self):
        from repro.problems.generators import generate_mkp

        return generate_mkp(12, 2, rng=3)

    def test_backend_free_methods_collapse(self):
        sweep = BackendSweep(
            self.instance(), backends=["pbit", "metropolis"],
            replicas=[1, 2], methods=["saim", "greedy", "milp"],
            rng=0, **self.FAST,
        )
        points = sweep.grid_points()
        saim = [p for p in points if p["method"] == "saim"]
        assert len(saim) == 4  # 2 backends x 2 replicas
        for method in ("greedy", "milp"):
            rows = [p for p in points if p["method"] == method]
            assert rows == [{"method": method, "backend": "-", "replicas": 1}]

    def test_jobs_strip_annealing_knobs_for_baselines(self):
        sweep = BackendSweep(
            self.instance(), backends=["pbit"], replicas=[2],
            methods=["saim", "greedy"], rng=0,
            method_options={"greedy": {"improve": False}}, **self.FAST,
        )
        saim_job, greedy_job = sweep.jobs()
        assert saim_job.backend == "pbit" and saim_job.num_replicas == 2
        assert saim_job.config_overrides == self.FAST
        assert greedy_job.backend is None
        assert greedy_job.num_replicas == 1
        assert greedy_job.config is None
        assert greedy_job.config_overrides == {}
        assert greedy_job.method_options == {"improve": False}

    def test_method_comparison_table(self):
        from repro.analysis.sweep import sweep_backends

        report = sweep_backends(
            self.instance(), backends=["pbit"], replicas=[1],
            methods=["saim", "greedy", "milp"], rng=0,
            title="method comparison", **self.FAST,
        )
        assert len(report.points) == 3
        for token in ("method", "greedy", "milp", "saim", "best_cost"):
            assert token in report.table
        exact = next(p for p in report.points if p.params["method"] == "milp")
        greedy = next(p for p in report.points
                      if p.params["method"] == "greedy")
        assert greedy.metrics["best_cost"] >= exact.metrics["best_cost"] - 1e-9
        # The exact row must win (or tie) the table.
        best = report.best()
        assert best.metrics["best_cost"] == pytest.approx(
            exact.metrics["best_cost"]
        )

    def test_rejects_options_for_unknown_method(self):
        with pytest.raises(ValueError, match="not in the sweep"):
            BackendSweep(
                self.instance(), backends=["pbit"], methods=["saim"],
                method_options={"ga": {"num_children": 10}},
            )

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            BackendSweep(
                self.instance(), backends=["pbit"], methods=["quantum"],
            )


class TestSweepWithSolver:
    def test_saim_eta_sweep(self):
        """End-to-end: sweep SAIM's eta on a tiny problem."""
        from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
        from tests.helpers import tiny_knapsack_problem

        def runner(eta):
            config = SaimConfig(num_iterations=15, mcs_per_run=60, eta=eta)
            result = SelfAdaptiveIsingMachine(config).solve(
                tiny_knapsack_problem(), rng=0
            )
            return {
                "best_cost": result.best_cost,
                "feasible": result.feasible_ratio,
            }

        sweep = ParameterSweep(runner, {"eta": [1.0, 5.0, 20.0]})
        points = sweep.run()
        assert len(points) == 3
        best = sweep.best(points, "best_cost", maximize=False)
        assert best.metrics["best_cost"] <= -8.0 + 1e-9


class TestSweepStrategy:
    """Executor-strategy pass-through and the rendered strategy column."""

    FAST = dict(num_iterations=8, mcs_per_run=50, eta=5.0,
                eta_decay="sqrt", normalize_step=True)

    def test_strategy_column_rendered(self):
        from tests.helpers import tiny_knapsack_problem

        report = sweep_backends(
            tiny_knapsack_problem(), backends=["pbit"], replicas=[1],
            rng=0, **self.FAST,
        )
        assert "strategy" in report.table
        assert all(p.metrics["strategy"] == "process" for p in report.points)

    def test_fused_single_cell_grid_matches_process(self):
        """A one-cell SAIM/pbit grid is a fleet of one: fused must run and
        agree with the process path on the same integer seed."""
        from tests.helpers import tiny_knapsack_problem

        fused = sweep_backends(
            tiny_knapsack_problem(), backends=["pbit"], replicas=[1],
            rng=4, strategy="fused", **self.FAST,
        )
        process = sweep_backends(
            tiny_knapsack_problem(), backends=["pbit"], replicas=[1],
            rng=4, strategy="process", **self.FAST,
        )
        assert fused.points[0].metrics["strategy"] == "fused"
        assert (fused.points[0].metrics["best_cost"]
                == process.points[0].metrics["best_cost"])
        assert "fused" in fused.table

    def test_fused_heterogeneous_grid_rejected(self):
        from tests.helpers import tiny_knapsack_problem

        sweep = BackendSweep(
            tiny_knapsack_problem(), backends=["pbit", "metropolis"],
            rng=0, **self.FAST,
        )
        with pytest.raises(ValueError, match="shareable"):
            sweep.run(strategy="fused")

    def test_auto_records_resolved_strategy(self):
        from tests.helpers import tiny_knapsack_problem

        # One grid point -> below the auto-fuse minimum, resolves to
        # process; the column shows the *resolved* strategy, never "auto".
        points = BackendSweep(
            tiny_knapsack_problem(), backends=["pbit"], replicas=[1],
            rng=0, **self.FAST,
        ).run(strategy="auto")
        assert points[0].metrics["strategy"] == "process"
