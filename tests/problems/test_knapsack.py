"""Tests for repro.problems.knapsack (instance + exact DP)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.problems.knapsack import KnapsackInstance, knapsack_dp
from tests.helpers import all_binary_vectors


class TestKnapsackInstance:
    def test_profit_and_feasibility(self):
        instance = KnapsackInstance(
            np.array([60.0, 100.0, 120.0]), np.array([10, 20, 30]), capacity=50
        )
        assert instance.profit([0, 1, 1]) == pytest.approx(220.0)
        assert instance.is_feasible([0, 1, 1])
        assert not instance.is_feasible([1, 1, 1])

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            KnapsackInstance(np.ones(2), np.array([0, 1]), 5)

    def test_to_problem(self):
        instance = KnapsackInstance(np.array([3.0, 5.0]), np.array([2, 4]), 4)
        problem = instance.to_problem()
        assert problem.objective([0, 1]) == pytest.approx(-5.0)
        assert problem.is_feasible([0, 1])
        assert not problem.is_feasible([1, 1])


class TestKnapsackDp:
    def test_classic_example(self):
        instance = KnapsackInstance(
            np.array([60.0, 100.0, 120.0]), np.array([10, 20, 30]), capacity=50
        )
        x, profit = knapsack_dp(instance)
        assert profit == pytest.approx(220.0)
        np.testing.assert_array_equal(x, [0, 1, 1])

    def test_zero_capacity(self):
        instance = KnapsackInstance(np.ones(3), np.array([1, 1, 1]), capacity=0)
        x, profit = knapsack_dp(instance)
        assert profit == 0.0
        assert x.sum() == 0

    def test_item_heavier_than_capacity_skipped(self):
        instance = KnapsackInstance(
            np.array([100.0, 1.0]), np.array([10, 1]), capacity=5
        )
        x, profit = knapsack_dp(instance)
        assert profit == pytest.approx(1.0)
        np.testing.assert_array_equal(x, [0, 1])

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 9))
        instance = KnapsackInstance(
            rng.integers(1, 50, size=n).astype(float),
            rng.integers(1, 15, size=n),
            capacity=int(rng.integers(0, 40)),
        )
        _, dp_profit = knapsack_dp(instance)
        best = 0.0
        for x in all_binary_vectors(n):
            if instance.is_feasible(x):
                best = max(best, instance.profit(x))
        assert dp_profit == pytest.approx(best)

    def test_solution_is_feasible(self):
        rng = np.random.default_rng(7)
        instance = KnapsackInstance(
            rng.integers(1, 100, size=20).astype(float),
            rng.integers(1, 20, size=20),
            capacity=60,
        )
        x, profit = knapsack_dp(instance)
        assert instance.is_feasible(x)
        assert instance.profit(x) == pytest.approx(profit)
