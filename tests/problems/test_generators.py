"""Tests for repro.problems.generators (instance recipes)."""

import numpy as np
import pytest

from repro.problems.generators import (
    generate_mkp,
    generate_qkp,
    paper_mkp_instance,
    paper_qkp_instance,
)


class TestGenerateQkp:
    def test_value_and_weight_ranges(self):
        instance = generate_qkp(50, 0.5, rng=0)
        assert instance.values.min() >= 1 and instance.values.max() <= 100
        assert instance.weights.min() >= 1 and instance.weights.max() <= 50
        nonzero = instance.pair_values[instance.pair_values != 0]
        assert nonzero.min() >= 1 and nonzero.max() <= 100

    def test_density_is_respected(self):
        instance = generate_qkp(80, 0.25, rng=1)
        assert instance.density == pytest.approx(0.25, abs=0.05)

    def test_capacity_below_total_weight(self):
        instance = generate_qkp(50, 0.5, rng=2)
        assert instance.capacity <= instance.weights.sum()
        assert instance.capacity >= 1

    def test_full_density(self):
        instance = generate_qkp(20, 1.0, rng=3)
        assert instance.density == pytest.approx(1.0)

    def test_zero_density(self):
        instance = generate_qkp(20, 0.0, rng=4)
        assert np.all(instance.pair_values == 0)

    def test_deterministic(self):
        a = generate_qkp(10, 0.5, rng=7)
        b = generate_qkp(10, 0.5, rng=7)
        np.testing.assert_array_equal(a.pair_values, b.pair_values)
        assert a.capacity == b.capacity

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_qkp(0, 0.5)
        with pytest.raises(ValueError):
            generate_qkp(5, 1.5)


class TestGenerateMkp:
    def test_shapes(self):
        instance = generate_mkp(30, 5, rng=0)
        assert instance.num_items == 30
        assert instance.num_constraints == 5

    def test_capacity_tightness(self):
        instance = generate_mkp(40, 3, tightness=0.5, rng=1)
        ratios = instance.capacities / instance.weights.sum(axis=1)
        np.testing.assert_allclose(ratios, 0.5, atol=0.01)

    def test_values_correlated_with_weights(self):
        # Chu-Beasley values are column sums / M + noise; the correlation
        # between values and aggregate weights must be clearly positive.
        instance = generate_mkp(200, 5, rng=2)
        aggregate = instance.weights.sum(axis=0)
        corr = np.corrcoef(aggregate, instance.values)[0, 1]
        assert corr > 0.5

    def test_deterministic(self):
        a = generate_mkp(15, 2, rng=9)
        b = generate_mkp(15, 2, rng=9)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_mkp(0, 1)
        with pytest.raises(ValueError):
            generate_mkp(5, 0)
        with pytest.raises(ValueError):
            generate_mkp(5, 1, tightness=0.0)


class TestPaperInstances:
    def test_qkp_name_and_stability(self):
        a = paper_qkp_instance(100, 25, 1)
        b = paper_qkp_instance(100, 25, 1)
        assert a.name == "100-25-1"
        np.testing.assert_array_equal(a.pair_values, b.pair_values)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_qkp_different_indices_differ(self):
        a = paper_qkp_instance(100, 25, 1)
        b = paper_qkp_instance(100, 25, 2)
        assert not np.array_equal(a.pair_values, b.pair_values)

    def test_qkp_density_matches_name(self):
        instance = paper_qkp_instance(100, 50, 3)
        assert instance.density == pytest.approx(0.5, abs=0.08)

    def test_mkp_name_and_stability(self):
        a = paper_mkp_instance(100, 5, 8)
        b = paper_mkp_instance(100, 5, 8)
        assert a.name == "100-5-8"
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_mkp_shape_follows_name(self):
        instance = paper_mkp_instance(250, 10, 1)
        assert instance.num_items == 250
        assert instance.num_constraints == 10
