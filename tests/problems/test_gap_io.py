"""Tests for GAP serialization (repro.problems.io)."""

import numpy as np

from repro.problems.gap import generate_gap
from repro.problems.io import read_gap, write_gap


class TestGapRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        instance = generate_gap(6, 3, rng=0, name="roundtrip-gap")
        path = tmp_path / "instance.gap"
        write_gap(instance, path)
        loaded = read_gap(path)
        assert loaded.name == "roundtrip-gap"
        np.testing.assert_array_equal(loaded.costs, instance.costs)
        np.testing.assert_array_equal(loaded.loads, instance.loads)
        np.testing.assert_array_equal(loaded.capacities, instance.capacities)

    def test_feasibility_agrees_after_roundtrip(self, tmp_path):
        instance = generate_gap(5, 2, rng=1)
        path = tmp_path / "i.gap"
        write_gap(instance, path)
        loaded = read_gap(path)
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = (rng.uniform(0, 1, instance.num_variables) < 0.3).astype(np.int8)
            assert loaded.is_feasible(x) == instance.is_feasible(x)

    def test_single_agent(self, tmp_path):
        instance = generate_gap(4, 1, rng=2)
        path = tmp_path / "one.gap"
        write_gap(instance, path)
        loaded = read_gap(path)
        assert loaded.num_agents == 1
        np.testing.assert_array_equal(loaded.costs, instance.costs)

    def test_nameless(self, tmp_path):
        from repro.problems.gap import GapInstance

        instance = GapInstance(np.ones((2, 2)), np.ones((2, 2)), np.array([5.0, 5.0]))
        path = tmp_path / "bare.gap"
        write_gap(instance, path)
        loaded = read_gap(path)
        assert loaded.name == ""
