"""Tests for the Max-3-SAT problem family (repro.problems.max3sat)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.problems import (
    Max3SatInstance,
    generate_max3sat,
    problem_from_json,
    problem_to_json,
)

seeds = st.integers(min_value=0, max_value=10**6)

FAST = dict(num_iterations=8, mcs_per_run=80)


def tiny_instance():
    """4 variables, 5 clauses, optimum known by brute force."""
    return Max3SatInstance(
        num_variables=4,
        clauses=((1, 2, 3), (-1, 2, 4), (-2, -3, 4), (1, -4), (3,)),
        name="tiny",
    )


class TestValidation:
    def test_rejects_empty_clause_list(self):
        with pytest.raises(ValueError, match="at least one clause"):
            Max3SatInstance(3, ())

    def test_rejects_too_many_literals(self):
        with pytest.raises(ValueError, match="1-3 literals"):
            Max3SatInstance(4, ((1, 2, 3, 4),))

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError, match="1-based"):
            Max3SatInstance(3, ((0, 1),))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Max3SatInstance(3, ((1, 4),))

    def test_rejects_repeated_variable(self):
        with pytest.raises(ValueError, match="repeats"):
            Max3SatInstance(3, ((1, -1, 2),))

    def test_rejects_no_variables(self):
        with pytest.raises(ValueError, match=">= 1"):
            Max3SatInstance(0, ((1,),))


class TestSemantics:
    def test_count_satisfied_by_hand(self):
        instance = tiny_instance()
        # x = (1, 0, 1, 0): clause-by-clause: T, F, T, T, T.
        assert instance.count_satisfied([1, 0, 1, 0]) == 4
        # x = (0, 1, 1, 1) falsifies (-2,-3,4)? no — x4 = 1 satisfies it;
        # (1,-4) has x1 = 0 and x4 = 1: falsified.
        assert instance.count_satisfied([0, 1, 1, 1]) == 4
        assert instance.num_clauses == 5

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_objective_counts_unsatisfied_clauses(self, seed):
        rng = np.random.default_rng(seed)
        instance = generate_max3sat(6, 12, rng=rng)
        problem = instance.to_problem()
        assert problem.num_constraints == 0
        assert problem.max_order <= 3
        for _ in range(8):
            x = rng.integers(0, 2, size=6)
            unsatisfied = instance.num_clauses - instance.count_satisfied(x)
            assert problem.objective(x) == pytest.approx(unsatisfied, abs=1e-9)

    def test_brute_force_matches_enumeration(self):
        instance = tiny_instance()
        best_x, best_satisfied = instance.brute_force_max_satisfied()
        counts = [
            instance.count_satisfied((code >> np.arange(4)) & 1)
            for code in range(16)
        ]
        assert best_satisfied == max(counts)
        assert instance.count_satisfied(best_x) == best_satisfied

    def test_brute_force_size_limit(self):
        instance = generate_max3sat(21, 10, rng=0)
        with pytest.raises(ValueError, match="limited"):
            instance.brute_force_max_satisfied()


class TestGenerator:
    def test_deterministic_and_well_formed(self):
        first = generate_max3sat(10, 40, rng=5)
        second = generate_max3sat(10, 40, rng=5)
        assert first == second
        assert first.name == "max3sat-10x40"
        assert first.num_clauses == 40
        for clause in first.clauses:
            assert len(clause) == 3
            variables = [abs(literal) for literal in clause]
            assert len(set(variables)) == 3
            assert all(1 <= v <= 10 for v in variables)

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ValueError, match="at least 3"):
            generate_max3sat(2, 5)
        with pytest.raises(ValueError, match="at least one"):
            generate_max3sat(5, 0)


class TestCodec:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip(self, seed):
        instance = generate_max3sat(8, 20, rng=seed)
        decoded = problem_from_json(
            json.loads(json.dumps(problem_to_json(instance)))
        )
        assert decoded == instance


class TestFrontDoor:
    def test_solve_reaches_brute_force_optimum(self):
        instance = generate_max3sat(8, 24, rng=3)
        _, best_satisfied = instance.brute_force_max_satisfied()
        report = repro.solve(
            instance, backend="higher_order", rng=7, **FAST
        )
        assert report.feasible
        solved = instance.count_satisfied(report.best_x)
        assert solved == best_satisfied
        assert report.best_cost == pytest.approx(
            instance.num_clauses - solved, abs=1e-9
        )

    def test_backend_must_accept_polynomials(self):
        with pytest.raises(ValueError, match="higher_order"):
            repro.solve(tiny_instance(), backend="pbit", rng=0, **FAST)

    def test_penalty_method_rejects_polynomials(self):
        with pytest.raises(ValueError, match="higher_order"):
            repro.solve(tiny_instance(), method="penalty", rng=0)
