"""Tests for repro.problems.qkp."""

import numpy as np
import pytest

from repro.problems.generators import generate_qkp
from repro.problems.qkp import QkpInstance


def small_instance() -> QkpInstance:
    """4-item instance with hand-checkable numbers (cf. paper Fig. 3a)."""
    values = np.array([6.0, 15.0, 12.0, 28.0])
    pair = np.zeros((4, 4))
    pair[0, 1] = pair[1, 0] = 64.0
    pair[1, 2] = pair[2, 1] = 21.0
    pair[2, 3] = pair[3, 2] = 34.0
    weights = np.array([10.5, 25.6, 8.25, 2.4])
    return QkpInstance(values, pair, weights, capacity=42.0, name="fig3a")


class TestQkpInstance:
    def test_profit_by_hand(self):
        instance = small_instance()
        # Items 0 and 1: 6 + 15 + pair(0,1) = 85.
        assert instance.profit([1, 1, 0, 0]) == pytest.approx(85.0)

    def test_cost_is_negative_profit(self):
        instance = small_instance()
        x = [1, 0, 1, 1]
        assert instance.cost(x) == pytest.approx(-instance.profit(x))

    def test_feasibility(self):
        instance = small_instance()
        assert instance.is_feasible([1, 1, 0, 0])  # 36.1 kg <= 42
        assert not instance.is_feasible([1, 1, 1, 0])  # 44.35 kg

    def test_total_weight(self):
        instance = small_instance()
        assert instance.total_weight([0, 1, 0, 1]) == pytest.approx(28.0)

    def test_empty_selection(self):
        instance = small_instance()
        assert instance.profit([0, 0, 0, 0]) == 0.0
        assert instance.is_feasible([0, 0, 0, 0])

    def test_density(self):
        # 3 pairs present out of 6.
        assert small_instance().density == pytest.approx(0.5)

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            QkpInstance(np.ones(2), np.eye(2), np.ones(2), 1.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="positive"):
            QkpInstance(np.ones(2), np.zeros((2, 2)), np.array([1.0, -1.0]), 1.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            QkpInstance(np.ones(3), np.zeros((2, 2)), np.ones(3), 1.0)


class TestToProblem:
    def test_objective_matches_cost(self):
        instance = generate_qkp(10, 0.5, rng=0)
        problem = instance.to_problem()
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = (rng.uniform(0, 1, 10) < 0.5).astype(np.int8)
            assert problem.objective(x) == pytest.approx(instance.cost(x))

    def test_feasibility_matches(self):
        instance = generate_qkp(10, 0.5, rng=2)
        problem = instance.to_problem()
        rng = np.random.default_rng(3)
        for _ in range(20):
            x = (rng.uniform(0, 1, 10) < 0.5).astype(np.int8)
            assert problem.is_feasible(x) == instance.is_feasible(x)

    def test_single_inequality(self):
        problem = generate_qkp(6, 0.5, rng=4).to_problem()
        assert problem.inequalities.num_constraints == 1
        assert problem.equalities.num_constraints == 0
