"""Tests for the generalized assignment problem (repro.problems.gap)."""

import numpy as np
import pytest

from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.problems.gap import GapInstance, generate_gap, solve_gap_exact


def tiny_instance() -> GapInstance:
    """2 jobs x 2 agents, solvable by hand.

    Costs: job0 -> (1, 5), job1 -> (5, 1); loads all 1; capacities (1, 1).
    Optimal: job0 on agent0, job1 on agent1, cost 2.
    """
    return GapInstance(
        costs=np.array([[1.0, 5.0], [5.0, 1.0]]),
        loads=np.ones((2, 2)),
        capacities=np.array([1.0, 1.0]),
        name="tiny-gap",
    )


class TestGapInstance:
    def test_shapes(self):
        instance = tiny_instance()
        assert instance.num_jobs == 2
        assert instance.num_agents == 2
        assert instance.num_variables == 4

    def test_cost_by_hand(self):
        # x = (job0->agent0, job1->agent1) = [1, 0, 0, 1].
        assert tiny_instance().cost([1, 0, 0, 1]) == pytest.approx(2.0)

    def test_feasibility_requires_one_hot(self):
        instance = tiny_instance()
        assert instance.is_feasible([1, 0, 0, 1])
        assert not instance.is_feasible([1, 1, 0, 1])  # job0 on two agents
        assert not instance.is_feasible([0, 0, 0, 1])  # job0 unassigned

    def test_feasibility_requires_capacity(self):
        instance = tiny_instance()
        # Both jobs on agent0: one-hot holds but capacity 1 < load 2.
        assert not instance.is_feasible([1, 0, 1, 0])

    def test_assignment_of(self):
        instance = tiny_instance()
        np.testing.assert_array_equal(
            instance.assignment_of([1, 0, 0, 1]), [0, 1]
        )
        np.testing.assert_array_equal(
            instance.assignment_of([0, 0, 0, 1]), [-1, 1]
        )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            GapInstance(np.ones((2, 2)), np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            GapInstance(np.ones((2, 2)), np.ones((2, 2)), np.ones(3))


class TestToProblem:
    def test_constraint_structure(self):
        problem = tiny_instance().to_problem()
        assert problem.equalities.num_constraints == 2  # one per job
        assert problem.inequalities.num_constraints == 2  # one per agent

    def test_feasibility_agrees(self):
        instance = generate_gap(4, 3, rng=0)
        problem = instance.to_problem()
        rng = np.random.default_rng(1)
        for _ in range(30):
            x = (rng.uniform(0, 1, instance.num_variables) < 0.3).astype(np.int8)
            assert problem.is_feasible(x) == instance.is_feasible(x)

    def test_objective_agrees(self):
        instance = generate_gap(4, 3, rng=2)
        problem = instance.to_problem()
        rng = np.random.default_rng(3)
        x = (rng.uniform(0, 1, instance.num_variables) < 0.3).astype(np.int8)
        assert problem.objective(x) == pytest.approx(instance.cost(x))


class TestExactSolver:
    def test_tiny_optimum(self):
        x, cost = solve_gap_exact(tiny_instance())
        assert cost == pytest.approx(2.0)
        np.testing.assert_array_equal(x, [1, 0, 0, 1])

    def test_random_instances_solvable(self):
        instance = generate_gap(6, 3, rng=4)
        x, cost = solve_gap_exact(instance)
        assert instance.is_feasible(x)
        assert instance.cost(x) == pytest.approx(cost)

    def test_infeasible_raises(self):
        impossible = GapInstance(
            costs=np.ones((2, 1)),
            loads=np.ones((2, 1)),
            capacities=np.array([1.0]),  # two unit jobs, capacity one
        )
        with pytest.raises(RuntimeError, match="infeasible"):
            solve_gap_exact(impossible)


class TestSaimOnGap:
    def test_saim_finds_near_optimal_assignment(self):
        """SAIM's equality-constraint path: multipliers take both signs."""
        instance = generate_gap(5, 3, tightness=1.0, rng=5)
        x_exact, exact_cost = solve_gap_exact(instance)
        config = SaimConfig(
            num_iterations=120, mcs_per_run=300,
            eta=5.0, eta_decay="sqrt", normalize_step=True, alpha=5.0,
        )
        result = SelfAdaptiveIsingMachine(config).solve(
            instance.to_problem(), rng=1
        )
        assert result.found_feasible
        assert instance.is_feasible(result.best_x)
        # Costs are positive here; allow a modest optimality gap.
        assert result.best_cost <= 1.25 * exact_cost + 1e-9

    def test_one_hot_multipliers_can_go_negative(self):
        instance = generate_gap(4, 2, tightness=1.2, rng=6)
        config = SaimConfig(
            num_iterations=60, mcs_per_run=150,
            eta=5.0, eta_decay="sqrt", normalize_step=True, alpha=5.0,
        )
        result = SelfAdaptiveIsingMachine(config).solve(
            instance.to_problem(), rng=2
        )
        # The one-hot equalities push lambda down when jobs are unassigned
        # (residual -1): at least one multiplier should have gone negative
        # at some point.
        assert result.trace.lambdas.min() < 0
