"""Tests for weighted maximum independent set (repro.problems.mis)."""

import numpy as np
import pytest

from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.problems.mis import MisInstance, random_mis


def path_instance() -> MisInstance:
    """Path 0-1-2 with weights (3, 5, 4): optimum is {0, 2} with weight 7."""
    return MisInstance(np.array([3.0, 5.0, 4.0]), ((0, 1), (1, 2)), name="path3")


class TestMisInstance:
    def test_counts(self):
        instance = path_instance()
        assert instance.num_vertices == 3
        assert instance.num_edges == 2

    def test_independence(self):
        instance = path_instance()
        assert instance.is_independent([1, 0, 1])
        assert not instance.is_independent([1, 1, 0])
        assert instance.is_independent([0, 1, 0])

    def test_total_weight(self):
        assert path_instance().total_weight([1, 0, 1]) == pytest.approx(7.0)

    def test_duplicate_edges_deduplicated(self):
        instance = MisInstance(np.ones(3), ((0, 1), (1, 0), (0, 1)))
        assert instance.num_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            MisInstance(np.ones(2), ((0, 0),))

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="range"):
            MisInstance(np.ones(2), ((0, 5),))


class TestExactOptimum:
    def test_path_optimum(self):
        x, weight = path_instance().exact_optimum()
        assert weight == pytest.approx(7.0)
        np.testing.assert_array_equal(x, [1, 0, 1])

    def test_optimum_is_independent(self):
        instance = random_mis(12, edge_probability=0.4, rng=0)
        x, weight = instance.exact_optimum()
        assert instance.is_independent(x)
        assert instance.total_weight(x) == pytest.approx(weight)

    def test_matches_brute_force(self):
        instance = random_mis(10, edge_probability=0.3, rng=1)
        _, exact = instance.exact_optimum()
        best = 0.0
        for code in range(2**10):
            x = ((code >> np.arange(10)) & 1).astype(np.int8)
            if instance.is_independent(x):
                best = max(best, instance.total_weight(x))
        assert exact == pytest.approx(best)

    def test_empty_graph_takes_everything(self):
        instance = MisInstance(np.array([1.0, 2.0, 3.0]), ())
        _, weight = instance.exact_optimum()
        assert weight == pytest.approx(6.0)


class TestToProblem:
    def test_one_constraint_per_edge(self):
        instance = random_mis(10, edge_probability=0.4, rng=2)
        problem = instance.to_problem()
        assert problem.inequalities.num_constraints == instance.num_edges

    def test_feasibility_agrees(self):
        instance = random_mis(10, edge_probability=0.3, rng=3)
        problem = instance.to_problem()
        rng = np.random.default_rng(0)
        for _ in range(30):
            x = (rng.uniform(0, 1, 10) < 0.4).astype(np.int8)
            assert problem.is_feasible(x) == instance.is_independent(x)

    def test_objective_is_negative_weight(self):
        instance = path_instance()
        problem = instance.to_problem()
        assert problem.objective([1, 0, 1]) == pytest.approx(-7.0)


class TestSaimOnMis:
    def test_saim_finds_near_optimal_set(self):
        """Stress test: one Lagrange multiplier per edge."""
        instance = random_mis(14, edge_probability=0.3, rng=4)
        _, optimum = instance.exact_optimum()
        config = SaimConfig(
            num_iterations=100, mcs_per_run=250,
            eta=1.0, eta_decay="sqrt", normalize_step=True, alpha=2.0,
        )
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=2)
        assert result.found_feasible
        assert instance.is_independent(result.best_x)
        assert -result.best_cost >= 0.9 * optimum

    def test_multiplier_vector_matches_edge_count(self):
        instance = random_mis(10, edge_probability=0.4, rng=5)
        config = SaimConfig(num_iterations=15, mcs_per_run=80)
        result = SelfAdaptiveIsingMachine(config).solve(instance.to_problem(), rng=0)
        assert result.final_lambdas.size == instance.num_edges
