"""Tests for repro.problems.maxcut."""

import numpy as np
import pytest

from repro.core.schedule import linear_beta_schedule
from repro.ising.pbit import PBitMachine
from repro.problems.maxcut import MaxCutInstance, random_maxcut


class TestMaxCutInstance:
    def test_cut_value_triangle(self):
        adjacency = np.array(
            [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        )
        instance = MaxCutInstance(adjacency)
        # Best cut of a triangle is 2 edges.
        assert instance.cut_value([1, 1, -1]) == pytest.approx(2.0)
        assert instance.cut_value([1, 1, 1]) == 0.0

    def test_energy_cut_identity(self):
        """cut(s) == -H(s) must hold for every partition."""
        instance = random_maxcut(7, edge_probability=0.6, rng=0)
        model = instance.to_ising()
        rng = np.random.default_rng(1)
        for _ in range(20):
            spins = rng.choice([-1.0, 1.0], size=7)
            assert instance.cut_value(spins) == pytest.approx(-model.energy(spins))

    def test_brute_force_max_cut(self):
        instance = random_maxcut(8, rng=2)
        spins, cut = instance.brute_force_max_cut()
        assert cut == pytest.approx(instance.cut_value(spins))
        # No single vertex move can improve a global optimum.
        for i in range(8):
            flipped = spins.copy()
            flipped[i] = -flipped[i]
            assert instance.cut_value(flipped) <= cut + 1e-9

    def test_pbit_machine_solves_maxcut(self):
        """End-to-end substrate check: the p-bit IM finds a maximum cut."""
        instance = random_maxcut(10, rng=3)
        _, best_cut = instance.brute_force_max_cut()
        machine = PBitMachine(instance.to_ising(), rng=0)
        result = machine.anneal(linear_beta_schedule(6.0, 300))
        assert instance.cut_value(result.best_sample) == pytest.approx(best_cut)

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError):
            MaxCutInstance(np.eye(3))

    def test_random_generator_bounds(self):
        instance = random_maxcut(12, edge_probability=0.3, weight_high=5, rng=4)
        assert instance.num_vertices == 12
        assert instance.adjacency.max() <= 5
        with pytest.raises(ValueError):
            random_maxcut(5, edge_probability=1.5)
