"""Tests for repro.problems.mkp."""

import numpy as np
import pytest

from repro.problems.generators import generate_mkp
from repro.problems.mkp import MkpInstance


def small_instance() -> MkpInstance:
    return MkpInstance(
        values=np.array([10.0, 20.0, 15.0]),
        weights=np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]]),
        capacities=np.array([4.0, 4.0]),
        name="tiny-mkp",
    )


class TestMkpInstance:
    def test_profit(self):
        assert small_instance().profit([1, 1, 0]) == pytest.approx(30.0)

    def test_cost_is_negative_profit(self):
        instance = small_instance()
        assert instance.cost([0, 1, 1]) == pytest.approx(-35.0)

    def test_loads(self):
        np.testing.assert_allclose(small_instance().loads([1, 0, 1]), [4.0, 4.0])

    def test_feasibility_requires_all_constraints(self):
        instance = small_instance()
        assert instance.is_feasible([1, 0, 1])  # loads (4, 4)
        assert not instance.is_feasible([1, 1, 1])  # loads (6, 6)
        assert not instance.is_feasible([0, 1, 1])  # loads (5, 3): first violated

    def test_counts(self):
        instance = small_instance()
        assert instance.num_items == 3
        assert instance.num_constraints == 2

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            MkpInstance(np.array([-1.0]), np.ones((1, 1)), np.ones(1))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MkpInstance(np.ones(3), np.ones((2, 2)), np.ones(2))


class TestToProblem:
    def test_objective_matches(self):
        instance = generate_mkp(12, 3, rng=0)
        problem = instance.to_problem()
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = (rng.uniform(0, 1, 12) < 0.5).astype(np.int8)
            assert problem.objective(x) == pytest.approx(instance.cost(x))

    def test_feasibility_matches(self):
        instance = generate_mkp(12, 3, rng=2)
        problem = instance.to_problem()
        rng = np.random.default_rng(3)
        for _ in range(20):
            x = (rng.uniform(0, 1, 12) < 0.5).astype(np.int8)
            assert problem.is_feasible(x) == instance.is_feasible(x)

    def test_constraint_count(self):
        problem = generate_mkp(8, 4, rng=4).to_problem()
        assert problem.inequalities.num_constraints == 4

    def test_objective_is_linear(self):
        problem = generate_mkp(6, 2, rng=5).to_problem()
        assert np.all(problem.quadratic == 0)
