"""Round-trip property tests for the canonical JSON problem codec.

The codec is the solver service's wire format, so its contract is exact:
``problem_from_json(json.loads(json.dumps(problem_to_json(p))))`` must
restore every array with the same dtype and bit-identical values, for
every registered problem family.  These tests drive randomized instances
of each family through a real ``json.dumps``/``loads`` cycle (not just
dict identity) and compare field by field.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.problems import (
    GapInstance,
    KnapsackInstance,
    MaxCutInstance,
    array_from_json,
    array_to_json,
    json_codec_classes,
    json_problem_kinds,
    problem_from_json,
    problem_to_json,
    register_problem_codec,
)
from repro.problems.generators import generate_mkp, generate_qkp
from repro.problems.gap import generate_gap
from repro.problems.mis import random_mis

seeds = st.integers(min_value=0, max_value=10**6)


def wire_cycle(instance):
    """Encode → real JSON bytes → decode, as the service does."""
    return problem_from_json(json.loads(json.dumps(problem_to_json(instance))))


def assert_arrays_identical(left, right):
    left, right = np.asarray(left), np.asarray(right)
    assert left.dtype == right.dtype
    assert left.shape == right.shape
    assert np.array_equal(left, right)


class TestArrayEnvelope:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_float_arrays_roundtrip_exactly(self, seed):
        rng = np.random.default_rng(seed)
        array = rng.uniform(-1e12, 1e12, size=(3, 5))
        decoded = array_from_json(json.loads(json.dumps(array_to_json(array))))
        assert_arrays_identical(array, decoded)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_integer_arrays_keep_dtype(self, seed):
        rng = np.random.default_rng(seed)
        array = rng.integers(1, 10**9, size=7, dtype=np.int64)
        decoded = array_from_json(json.loads(json.dumps(array_to_json(array))))
        assert_arrays_identical(array, decoded)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            array_to_json(np.array([1.0, np.inf]))

    def test_malformed_envelope_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            array_from_json({"dtype": "float64"})


class TestProblemRoundTrips:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_qkp(self, seed):
        instance = generate_qkp(12, 0.5, rng=seed, name=f"qkp-{seed}")
        decoded = wire_cycle(instance)
        assert_arrays_identical(instance.values, decoded.values)
        assert_arrays_identical(instance.pair_values, decoded.pair_values)
        assert_arrays_identical(instance.weights, decoded.weights)
        assert instance.capacity == decoded.capacity
        assert instance.name == decoded.name

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_mkp(self, seed):
        instance = generate_mkp(10, 3, rng=seed, name=f"mkp-{seed}")
        decoded = wire_cycle(instance)
        assert_arrays_identical(instance.values, decoded.values)
        assert_arrays_identical(instance.weights, decoded.weights)
        assert_arrays_identical(instance.capacities, decoded.capacities)
        assert instance.name == decoded.name

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_knapsack(self, seed):
        rng = np.random.default_rng(seed)
        instance = KnapsackInstance(
            values=rng.uniform(1, 100, 9),
            weights=rng.integers(1, 40, 9),
            capacity=int(rng.integers(40, 120)),
            name=f"kp-{seed}",
        )
        decoded = wire_cycle(instance)
        assert_arrays_identical(instance.values, decoded.values)
        assert_arrays_identical(instance.weights, decoded.weights)
        assert decoded.weights.dtype == np.int64
        assert instance.capacity == decoded.capacity

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_maxcut(self, seed):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0, 1, (8, 8))
        adjacency = np.triu(raw, k=1) + np.triu(raw, k=1).T
        instance = MaxCutInstance(adjacency, name=f"mc-{seed}")
        decoded = wire_cycle(instance)
        assert_arrays_identical(instance.adjacency, decoded.adjacency)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_mis(self, seed):
        instance = random_mis(10, 0.4, rng=seed)
        decoded = wire_cycle(instance)
        assert_arrays_identical(instance.weights, decoded.weights)
        assert instance.edges == decoded.edges

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_gap(self, seed):
        instance = generate_gap(6, 3, rng=seed)
        decoded = wire_cycle(instance)
        assert_arrays_identical(instance.costs, decoded.costs)
        assert_arrays_identical(instance.loads, decoded.loads)
        assert_arrays_identical(instance.capacities, decoded.capacities)


class TestRegistry:
    def test_every_front_door_family_has_a_codec(self):
        """The deep-lint RPD106 contract, pinned as a test too."""
        import inspect

        import repro.problems as problems

        covered = set(json_codec_classes())
        for name in problems.__all__:
            obj = getattr(problems, name)
            if inspect.isclass(obj) and hasattr(obj, "to_problem"):
                assert obj in covered, f"{name} has no JSON codec"

    def test_kinds_sorted_and_stable(self):
        kinds = json_problem_kinds()
        assert list(kinds) == sorted(kinds)
        assert {"qkp", "mkp", "knapsack", "maxcut", "mis", "gap"} <= set(kinds)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown problem kind"):
            problem_from_json({"kind": "sudoku"})

    def test_unregistered_class_rejected(self):
        with pytest.raises(TypeError, match="no JSON codec"):
            problem_to_json(object())

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_problem_codec("qkp", GapInstance, dict, dict)
