"""Tests for instance serialization (repro.problems.io)."""

import numpy as np
import pytest

from repro.problems.generators import generate_mkp, generate_qkp
from repro.problems.io import read_mkp, read_qkp, write_mkp, write_qkp


class TestQkpRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        instance = generate_qkp(12, 0.5, rng=0, name="roundtrip-12")
        path = tmp_path / "instance.qkp"
        write_qkp(instance, path)
        loaded = read_qkp(path)
        assert loaded.name == "roundtrip-12"
        np.testing.assert_array_equal(loaded.values, instance.values)
        np.testing.assert_array_equal(loaded.pair_values, instance.pair_values)
        np.testing.assert_array_equal(loaded.weights, instance.weights)
        assert loaded.capacity == instance.capacity

    def test_roundtrip_dense(self, tmp_path):
        instance = generate_qkp(8, 1.0, rng=1)
        path = tmp_path / "dense.qkp"
        write_qkp(instance, path)
        loaded = read_qkp(path)
        np.testing.assert_array_equal(loaded.pair_values, instance.pair_values)

    def test_costs_agree_after_roundtrip(self, tmp_path):
        instance = generate_qkp(10, 0.4, rng=2)
        path = tmp_path / "c.qkp"
        write_qkp(instance, path)
        loaded = read_qkp(path)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = (rng.uniform(0, 1, 10) < 0.5).astype(np.int8)
            assert loaded.cost(x) == pytest.approx(instance.cost(x))

    def test_rejects_unknown_constraint_type(self, tmp_path):
        instance = generate_qkp(5, 0.5, rng=3)
        path = tmp_path / "bad.qkp"
        write_qkp(instance, path)
        text = path.read_text().replace("\n0\n", "\n1\n")
        path.write_text(text)
        with pytest.raises(ValueError, match="constraint type"):
            read_qkp(path)


class TestMkpRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        instance = generate_mkp(15, 4, rng=0, name="roundtrip-mkp")
        path = tmp_path / "instance.mkp"
        write_mkp(instance, path, optimum=1234.0)
        loaded, optimum = read_mkp(path)
        assert optimum == 1234.0
        assert loaded.name == "roundtrip-mkp"
        np.testing.assert_array_equal(loaded.values, instance.values)
        np.testing.assert_array_equal(loaded.weights, instance.weights)
        np.testing.assert_array_equal(loaded.capacities, instance.capacities)

    def test_unknown_optimum_defaults_to_zero(self, tmp_path):
        instance = generate_mkp(6, 2, rng=1)
        path = tmp_path / "i.mkp"
        write_mkp(instance, path)
        _, optimum = read_mkp(path)
        assert optimum == 0.0

    def test_nameless_instance(self, tmp_path):
        instance = generate_mkp(6, 2, rng=2, name="")
        # Generator assigns a default name; strip it to test the no-comment path.
        from repro.problems.mkp import MkpInstance

        bare = MkpInstance(instance.values, instance.weights, instance.capacities)
        path = tmp_path / "bare.mkp"
        write_mkp(bare, path)
        loaded, _ = read_mkp(path)
        np.testing.assert_array_equal(loaded.capacities, bare.capacities)
