"""``method="auto"`` through the front door: identity, audit trail, steering."""

import numpy as np
import pytest

import repro
from repro.core.saim import SaimConfig
from repro.planner import PerfModel
from repro.problems.generators import generate_qkp
from repro.problems.max3sat import generate_max3sat

FAST = SaimConfig(num_iterations=8, mcs_per_run=40)


def _assert_same_solve(auto, saim):
    """Field-wise identity (SolveReport.__eq__ includes method)."""
    assert auto.backend == saim.backend
    assert np.array_equal(auto.best_x, saim.best_x)
    assert auto.best_cost == saim.best_cost
    assert auto.feasible == saim.feasible
    assert np.array_equal(auto.final_lambdas, saim.final_lambdas)


class TestRegistration:
    def test_auto_is_registered(self):
        assert "auto" in repro.available_methods()

    def test_auto_has_no_pinned_backend(self):
        assert repro.method_info("auto").default_backend is None


class TestNoModelIdentity:
    """Without a perf model, auto must be bit-identical to saim."""

    def test_quadratic_matches_saim(self):
        instance = generate_qkp(18, 0.6, rng=4)
        auto = repro.solve(instance, method="auto", config=FAST, rng=11)
        saim = repro.solve(instance, method="saim", config=FAST, rng=11)
        assert auto.method == "auto"
        _assert_same_solve(auto, saim)

    def test_poly_matches_saim_higher_order(self):
        instance = generate_max3sat(14, 50, rng=4)
        auto = repro.solve(instance, method="auto", config=FAST, rng=11)
        saim = repro.solve(instance, method="saim", backend="higher_order",
                           config=FAST, rng=11)
        assert auto.backend == "higher_order"
        assert np.array_equal(auto.best_x, saim.best_x)
        assert auto.best_cost == saim.best_cost


class TestAuditTrail:
    def test_detail_carries_plan_features_prediction(self):
        instance = generate_qkp(16, 0.6, rng=2)
        report = repro.solve(instance, method="auto", config=FAST, rng=3)
        plan = report.detail["plan"]
        assert plan["backend"] == report.backend
        features = report.detail["features"]
        assert features["num_variables"] == 16
        prediction = report.detail["prediction"]
        assert prediction["source"] in ("model", "heuristic")
        with pytest.raises(KeyError):
            report.detail["nonsense"]

    def test_detail_still_resolves_saim_attributes(self):
        instance = generate_qkp(16, 0.6, rng=2)
        report = repro.solve(instance, method="auto", config=FAST, rng=3)
        # Attribute access falls through to the delegated solve's result.
        assert report.detail.final_lambdas is not None
        assert report.detail.num_replicas == 1


class TestOptionValidation:
    def test_backend_options_rejected(self):
        instance = generate_qkp(12, 0.6, rng=2)
        with pytest.raises(ValueError, match="plans the machine knobs"):
            repro.solve(instance, method="auto", config=FAST,
                        backend_options={"kernel": "serial"})

    def test_unknown_method_options_rejected(self):
        instance = generate_qkp(12, 0.6, rng=2)
        with pytest.raises(ValueError, match="unknown method_options"):
            repro.solve(instance, method="auto", config=FAST,
                        method_options={"frobnicate": True})

    def test_poly_with_incompatible_backend_pin_rejected(self):
        instance = generate_max3sat(12, 40, rng=2)
        with pytest.raises(ValueError, match="polynomial"):
            repro.solve(instance, method="auto", backend="pbit", config=FAST)


class TestModelSteering:
    def _steering_model_path(self, tmp_path):
        """A model that makes chromatic:csr irresistible."""
        model = PerfModel({
            "pbit:lockstep:float64": [1.0, 0, 0, 0, 0],
            "pbit:lockstep:float32": [1.0, 0, 0, 0, 0],
            "pbit:serial:float64": [1.0, 0, 0, 0, 0],
            "chromatic:csr:float64": [1e-9, 0, 0, 0, 0],
            "chromatic:dense:float64": [1.0, 0, 0, 0, 0],
        })
        path = tmp_path / "perf_model.json"
        model.save(path)
        return path

    def test_model_path_steers_the_backend(self, tmp_path):
        instance = generate_qkp(16, 0.6, rng=5)
        path = self._steering_model_path(tmp_path)
        report = repro.solve(
            instance, method="auto", config=FAST, rng=7,
            method_options={"model_path": str(path)},
        )
        assert report.backend == "chromatic"
        plan = report.detail["plan"]
        assert plan["storage"] == "csr"
        prediction = report.detail["prediction"]
        assert prediction["source"] == "model"
        assert prediction["chosen"] == "chromatic:csr:float64"
        # Steered solves still solve: report is well-formed and feasible
        # flag is a real verdict on a real solution vector.
        assert report.best_x.shape == (16,)

    def test_env_model_steers_without_method_options(self, tmp_path,
                                                     monkeypatch):
        instance = generate_qkp(16, 0.6, rng=5)
        path = self._steering_model_path(tmp_path)
        monkeypatch.setenv("REPRO_PERF_MODEL", str(path))
        report = repro.solve(instance, method="auto", config=FAST, rng=7)
        assert report.backend == "chromatic"
        assert report.detail["prediction"]["source"] == "model"
