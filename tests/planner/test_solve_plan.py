"""plan_solve / plan_batch_strategy: candidate sets, pricing, fallback."""

import pytest

from repro.core.saim import SaimConfig
from repro.planner import PerfModel, extract_features, plan_solve
from repro.planner.plan import fused_fleet_cap, plan_batch_strategy, SolvePlan
from repro.planner.tunables import AUTO_FUSED_MAX_VARIABLES, AUTO_FUSED_MIN_JOBS
from repro.problems.generators import generate_qkp
from repro.problems.max3sat import generate_max3sat

QKP = extract_features(generate_qkp(20, 0.6, rng=1))
SAT = extract_features(generate_max3sat(16, 60, rng=1))


def _model(**overrides):
    """A synthetic model where chromatic:csr is by far the cheapest."""
    configs = {
        "pbit:lockstep:float64": [1e-3, 0, 0, 0, 0],
        "pbit:lockstep:float32": [1e-3, 0, 0, 0, 0],
        "pbit:serial:float64": [1e-2, 0, 0, 0, 0],
        "chromatic:csr:float64": [1e-6, 0, 0, 0, 0],
        "chromatic:csr:float32": [1e-6, 0, 0, 0, 0],
        "chromatic:dense:float64": [1e-4, 0, 0, 0, 0],
        "chromatic:dense:float32": [1e-4, 0, 0, 0, 0],
        "higher_order::float64": [1e-5, 0, 0, 0, 0],
    }
    configs.update(overrides)
    return PerfModel(configs)


class TestHeuristicFallback:
    def test_no_model_picks_front_door_default(self):
        plan, prediction = plan_solve(QKP)
        assert plan.backend == "pbit"
        assert plan.kernel == "lockstep"
        # The explicit lockstep pin IS the front-door default, and no
        # dtype pin means the backend's own default dtype: the delegated
        # solve is bit-identical to method="saim".
        assert plan.dtype is None and plan.storage is None
        assert plan.backend_options() == {"kernel": "lockstep"}
        assert prediction["source"] == "heuristic"
        assert prediction["predicted_seconds"] is None

    def test_model_without_coverage_degrades_to_heuristic(self):
        plan, prediction = plan_solve(QKP, model=PerfModel({}))
        assert plan.kernel == "lockstep"
        assert prediction["source"] == "heuristic"

    def test_poly_shape_plans_higher_order(self):
        plan, prediction = plan_solve(SAT)
        assert plan.backend == "higher_order"
        assert prediction["source"] == "heuristic"

    def test_poly_shape_rejects_incompatible_pin(self):
        with pytest.raises(ValueError, match="polynomial"):
            plan_solve(SAT, backend="pbit")

    def test_unmodeled_pinned_backend_passes_through(self):
        plan, prediction = plan_solve(QKP, backend="pt")
        assert plan.backend == "pt"
        assert plan.backend_options() == {}
        assert prediction["source"] == "heuristic"


class TestModelSteering:
    def test_model_steers_to_cheapest_candidate(self):
        plan, prediction = plan_solve(QKP, model=_model())
        assert plan.backend == "chromatic"
        assert plan.storage == "csr"
        assert prediction["source"] == "model"
        assert prediction["chosen"] == "chromatic:csr:float64"
        assert prediction["predicted_seconds"] == pytest.approx(
            prediction["candidates"]["chromatic:csr:float64"])
        assert prediction["candidates"]["chromatic:csr:float64"] == min(
            prediction["candidates"].values())

    def test_tie_prefers_heuristic_order(self):
        # All candidates priced identically: the first candidate (today's
        # front-door default) must win the tie.
        flat = PerfModel({key: [1e-5, 0, 0, 0, 0] for key in _model().configs})
        plan, prediction = plan_solve(QKP, model=flat)
        assert prediction["source"] == "model"
        assert plan.backend == "pbit" and plan.kernel == "lockstep"

    def test_pinned_backend_narrows_candidates(self):
        plan, prediction = plan_solve(QKP, model=_model(), backend="pbit")
        assert plan.backend == "pbit"
        assert all(key.startswith("pbit:")
                   for key in prediction["candidates"])

    def test_pinned_dtype_narrows_candidates(self):
        config = SaimConfig(dtype="float32")
        plan, prediction = plan_solve(
            QKP, model=_model(), backend="chromatic", config=config)
        assert plan.dtype == "float32"
        assert set(prediction["candidates"]) == {
            "chromatic:csr:float32", "chromatic:dense:float32"}

    def test_serial_offered_only_at_replica_one(self):
        cheap_serial = _model(**{"pbit:serial:float64": [1e-9, 0, 0, 0, 0]})
        single, _ = plan_solve(QKP, model=cheap_serial, num_replicas=1)
        assert single.kernel == "serial"
        batched, prediction = plan_solve(
            QKP, model=cheap_serial, num_replicas=8)
        assert batched.kernel != "serial"
        assert "pbit:serial:float64" not in prediction["candidates"]

    def test_prediction_scales_with_sweep_budget(self):
        short = SaimConfig(num_iterations=10, mcs_per_run=10)
        long = SaimConfig(num_iterations=100, mcs_per_run=10)
        _, small = plan_solve(QKP, model=_model(), config=short)
        _, big = plan_solve(QKP, model=_model(), config=long)
        assert small["num_sweeps"] == 100
        assert big["num_sweeps"] == 1000
        assert big["predicted_seconds"] == pytest.approx(
            10 * small["predicted_seconds"])

    def test_plan_knobs_pass_through(self):
        plan, _ = plan_solve(QKP, model=_model(), num_replicas=8,
                             restart="best")
        assert plan.num_replicas == 8
        assert plan.restart == "best"

    def test_plan_dict_round_trip(self):
        plan, _ = plan_solve(QKP, model=_model())
        assert SolvePlan.from_dict(plan.as_dict()) == plan


class TestBatchStrategy:
    def test_fused_when_small_shareable_and_enough_jobs(self):
        sizes = [24] * max(AUTO_FUSED_MIN_JOBS, 2)
        assert plan_batch_strategy(sizes, shareable=True,
                                   model=PerfModel({})) == "fused"

    def test_not_shareable_forces_process(self):
        assert plan_batch_strategy([24, 24, 24], shareable=False,
                                   model=PerfModel({})) == "process"

    def test_unknown_size_forces_process(self):
        sizes = [24, None, 24]
        assert plan_batch_strategy(sizes, shareable=True,
                                   model=PerfModel({})) == "process"

    def test_too_few_jobs_forces_process(self):
        sizes = [24] * (AUTO_FUSED_MIN_JOBS - 1)
        assert plan_batch_strategy(sizes, shareable=True,
                                   model=PerfModel({})) == "process"

    def test_oversized_instance_forces_process(self):
        sizes = [AUTO_FUSED_MAX_VARIABLES + 1] * max(AUTO_FUSED_MIN_JOBS, 2)
        assert plan_batch_strategy(sizes, shareable=True,
                                   model=PerfModel({})) == "process"

    def test_calibrated_cap_overrides_pinned_tunable(self):
        model = PerfModel({}, tunables={"fused_max_variables": 10})
        assert fused_fleet_cap(model) == 10
        sizes = [11] * max(AUTO_FUSED_MIN_JOBS, 2)
        assert plan_batch_strategy(sizes, shareable=True,
                                   model=model) == "process"
        assert plan_batch_strategy([10] * len(sizes), shareable=True,
                                   model=model) == "fused"

    def test_cap_without_model_is_pinned_tunable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_MODEL", "")
        assert fused_fleet_cap(None) == AUTO_FUSED_MAX_VARIABLES
