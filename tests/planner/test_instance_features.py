"""Planner feature extraction: deterministic, cheap, wire/pickle-safe."""

import pickle

import numpy as np
import pytest

from repro.core.poly import PolyProblem
from repro.planner import (
    BatchFeatures,
    InstanceFeatures,
    extract_batch_features,
    extract_features,
)
from repro.problems.generators import generate_qkp
from repro.problems.max3sat import generate_max3sat


class TestQuadraticFeatures:
    def test_deterministic_across_calls(self):
        instance = generate_qkp(18, 0.5, rng=3)
        first = extract_features(instance)
        second = extract_features(instance)
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_qkp_shape(self):
        instance = generate_qkp(18, 0.5, rng=3)
        features = extract_features(instance)
        assert features.kind == "quadratic"
        assert features.num_variables == 18
        assert features.num_constraints == 1  # the capacity row
        assert features.poly_degree == 2
        assert 0.0 < features.coupling_density <= 1.0
        assert features.weight_range >= 1.0
        assert isinstance(features.integral_weights, bool)

    def test_density_counts_upper_triangle(self):
        problem = generate_qkp(12, 1.0, rng=0).to_problem()
        features = extract_features(problem)
        upper = problem.quadratic[np.triu_indices(12, k=1)]
        expected = np.count_nonzero(upper) / (12 * 11 / 2)
        assert features.coupling_density == pytest.approx(expected)

    def test_fingerprint_distinguishes_shapes(self):
        small = extract_features(generate_qkp(12, 0.5, rng=1))
        large = extract_features(generate_qkp(40, 0.5, rng=1))
        assert small.fingerprint() != large.fingerprint()

    def test_same_shape_same_fingerprint_across_objects(self):
        # Two separately generated but identical instances: the
        # fingerprint identifies shape, not object identity.
        a = extract_features(generate_qkp(15, 0.5, rng=7))
        b = extract_features(generate_qkp(15, 0.5, rng=7))
        assert a.fingerprint() == b.fingerprint()


class TestPolyFeatures:
    def test_max3sat_is_poly_degree_3(self):
        instance = generate_max3sat(16, 60, rng=2)
        features = extract_features(instance)
        assert features.kind == "poly"
        assert features.poly_degree == 3
        assert features.num_variables == 16
        assert features.num_terms > 0

    def test_plain_poly_problem(self):
        problem = PolyProblem(
            num_variables=4, terms={(0, 1, 2): 1.5, (1, 3): -2.0, (2,): 1.0}
        )
        features = extract_features(problem)
        assert features.kind == "poly"
        assert features.num_terms == 3
        assert features.poly_degree == 3
        assert not features.integral_weights


class TestSerialization:
    def test_as_dict_from_dict_round_trip(self):
        features = extract_features(generate_qkp(14, 0.4, rng=5))
        payload = features.as_dict()
        assert all(
            isinstance(value, (str, int, float, bool))
            for value in payload.values()
        )
        assert InstanceFeatures.from_dict(payload) == features

    def test_json_shaped_payload_round_trips_fingerprint(self):
        import json

        features = extract_features(generate_qkp(14, 0.4, rng=5))
        decoded = InstanceFeatures.from_dict(
            json.loads(json.dumps(features.as_dict()))
        )
        assert decoded.fingerprint() == features.fingerprint()

    def test_pickle_round_trip(self):
        features = extract_features(generate_max3sat(12, 40, rng=1))
        clone = pickle.loads(pickle.dumps(features))
        assert clone == features
        assert clone.fingerprint() == features.fingerprint()

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError, match="cannot extract"):
            extract_features(object())


class TestBatchFeatures:
    def test_batch_features(self):
        batch = extract_batch_features([10, 30, 20])
        assert batch == BatchFeatures(
            num_jobs=3, max_variables=30, total_variables=60
        )

    def test_empty_batch(self):
        batch = extract_batch_features([])
        assert batch.num_jobs == 0
        assert batch.max_variables == 0
