"""PerfModel: config keys, fitting, persistence, and the fallback ladder."""

import json

import numpy as np
import pytest

from repro.planner.model import (
    BASIS,
    MODEL_VERSION,
    PerfModel,
    bootstrap_model,
    config_key,
    default_model_path,
    fit_weights,
    load_default_model,
    load_model,
)
from repro.planner.tunables import AUTO_FUSED_MAX_VARIABLES


class TestConfigKey:
    def test_kernel_spelling(self):
        assert config_key("pbit", kernel="lockstep") == "pbit:lockstep:float64"

    def test_storage_spelling(self):
        assert (config_key("chromatic", storage="csr", dtype="float32")
                == "chromatic:csr:float32")

    def test_no_variant(self):
        assert config_key("higher_order") == "higher_order::float64"

    def test_kernel_and_storage_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            config_key("pbit", kernel="lockstep", storage="csr")


class TestFitAndPredict:
    def test_fit_recovers_planted_surface(self):
        planted = np.array([1e-5, 2e-7, 3e-8, 4e-9, 5e-10])

        def seconds(n, r, terms):
            return float(planted @ np.array([1.0, n, n * r, terms, terms * r]))

        rows = [
            (n, r, terms, seconds(n, r, terms))
            for n in (16, 32, 64, 128)
            for r in (1, 4, 16)
            # terms must vary independently of n or the surface is not
            # identifiable (sparse ~3n vs dense ~n^2/2 coupling counts).
            for terms in (3 * n, n * (n - 1) // 2)
        ]
        model = PerfModel({"pbit:lockstep:float64": fit_weights(rows)})
        # Held-out shape: the fitted surface reproduces the planted one.
        predicted = model.predict_sweep_seconds(
            "pbit:lockstep:float64", n=96, r=8, terms=400)
        assert predicted == pytest.approx(seconds(96, 8, 400), rel=1e-6)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one sample"):
            fit_weights([])

    def test_predict_scales_with_sweeps_and_floors(self):
        model = PerfModel({"pbit:lockstep:float64": [1e-6, 0, 0, 0, 0],
                           "pbit:serial:float64": [-1.0, 0, 0, 0, 0]})
        fast = model.predict_solve_seconds(
            "pbit:lockstep:float64", n=10, r=1, terms=10, num_sweeps=100)
        assert fast == pytest.approx(1e-4)
        # A degenerate fit can never predict a non-positive time.
        floored = model.predict_solve_seconds(
            "pbit:serial:float64", n=10, r=1, terms=10, num_sweeps=100)
        assert floored > 0

    def test_unknown_key_prices_as_none(self):
        model = PerfModel({})
        assert not model.covers("pbit:lockstep:float64")
        assert model.predict_solve_seconds(
            "pbit:lockstep:float64", n=1, r=1, terms=1, num_sweeps=1) is None

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError, match="expected 5"):
            PerfModel({"pbit:lockstep:float64": [1.0, 2.0]})


class TestPersistence:
    def _model(self):
        return PerfModel(
            {"chromatic:csr:float64": [1e-5, 2e-7, 3e-8, 4e-9, 5e-10]},
            tunables={"fused_max_variables": 96},
            host={"cpu_count": 4},
            source="calibration",
        )

    def test_json_round_trip(self):
        model = self._model()
        clone = PerfModel.from_json(model.to_json())
        assert clone.configs == model.configs
        assert clone.tunables == model.tunables
        assert clone.source == "calibration"
        assert clone.fused_max_variables() == 96

    def test_version_mismatch_raises(self):
        payload = self._model().to_json()
        payload["version"] = MODEL_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            PerfModel.from_json(payload)

    def test_basis_mismatch_raises(self):
        payload = self._model().to_json()
        payload["basis"] = ["const", "n"]
        with pytest.raises(ValueError, match="basis"):
            PerfModel.from_json(payload)

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "perf_model.json"
        saved_to = self._model().save(path)
        assert saved_to == path
        payload = json.loads(path.read_text())
        assert payload["version"] == MODEL_VERSION
        assert payload["basis"] == list(BASIS)
        assert load_model(path).covers("chromatic:csr:float64")

    def test_fused_cap_falls_back_to_pinned_tunable(self):
        model = PerfModel({})
        assert model.fused_max_variables() == AUTO_FUSED_MAX_VARIABLES


class TestDefaultModelLadder:
    def test_empty_env_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_MODEL", "")
        assert default_model_path() is None
        assert load_default_model() is None

    def test_env_path_override(self, monkeypatch, tmp_path):
        path = tmp_path / "override.json"
        PerfModel({"pbit:lockstep:float64": [1e-6, 0, 0, 0, 0]}).save(path)
        monkeypatch.setenv("REPRO_PERF_MODEL", str(path))
        assert default_model_path() == path
        model = load_default_model()
        assert model is not None and model.covers("pbit:lockstep:float64")

    def test_missing_file_degrades_to_none(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PERF_MODEL", str(tmp_path / "absent.json"))
        assert load_default_model() is None

    def test_corrupt_file_degrades_to_none(self, monkeypatch, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        monkeypatch.setenv("REPRO_PERF_MODEL", str(path))
        assert load_default_model() is None


class TestBootstrap:
    def test_bootstrap_from_committed_grids(self):
        # The repo root carries the committed BENCH grids the portable
        # prior is fitted from.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        model = bootstrap_model(root)
        assert model is not None
        assert model.source == "bootstrap"
        assert model.covers("pbit:lockstep:float64")
        assert model.covers("chromatic:csr:float64")
        assert model.covers("higher_order::float64")
        seconds = model.predict_solve_seconds(
            "pbit:lockstep:float64", n=64, r=16, terms=2016, num_sweeps=1000)
        assert seconds > 0

    def test_bootstrap_empty_dir_is_none(self, tmp_path):
        assert bootstrap_model(tmp_path) is None
