"""Tests for the program/run split of the lock-step kernel.

Three guarantees of the solve-resident annealing design:

- **programming happens once** — the O(N^2) coupling preparation (cast +
  ``col_blocks``/``sub_blocks`` decomposition) is built exactly once per
  machine, however many ``set_fields`` + ``anneal_many`` cycles follow;
- **R = 1 runs the lock-step kernel** — the default p-bit path is the
  block kernel in threshold form, consuming the same noise stream in the
  same order as the retired pure-python scan (``kernel="serial"``), so the
  two produce the *same samples* (parity is asserted bit-for-bit on the
  spins; energies agree to accumulation rounding);
- **warm restarts are solve-resident** — a run starting from the previous
  run's final spins reuses the cached ``J @ s`` instead of recomputing the
  start-of-run matmul, and produces the same annealing results as a cold
  start from those spins.
"""

import numpy as np
import pytest

from repro.core.schedule import linear_beta_schedule
from repro.ising._lockstep import BLOCK, AnnealProgram
from repro.ising.pbit import PBitMachine
from repro.ising.quantization import QuantizedPBitMachine
from repro.ising.sa import MetropolisMachine
from tests.helpers import random_ising


def _counting_program(monkeypatch):
    """Patch AnnealProgram.__init__ to count constructions."""
    calls = {"count": 0}
    original = AnnealProgram.__init__

    def counting_init(self, coupling, dtype=None):
        calls["count"] += 1
        original(self, coupling, dtype=dtype)

    monkeypatch.setattr(AnnealProgram, "__init__", counting_init)
    return calls


class TestAnnealProgram:
    def test_blocks_match_coupling_slices(self):
        model = random_ising(70, rng=0)
        program = AnnealProgram(model.coupling)
        assert program.num_spins == 70
        assert len(program.col_blocks) == len(program.starts)
        for i0, cols, sub in zip(
            program.starts, program.col_blocks, program.sub_blocks
        ):
            np.testing.assert_array_equal(
                cols, model.coupling[:, i0:i0 + BLOCK]
            )
            np.testing.assert_array_equal(
                sub, model.coupling[i0:i0 + BLOCK, i0:i0 + BLOCK]
            )

    def test_dtype_cast_once(self):
        model = random_ising(20, rng=1)
        program = AnnealProgram(model.coupling, dtype="float32")
        assert program.coupling.dtype == np.float32
        assert all(b.dtype == np.float32 for b in program.col_blocks)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            AnnealProgram(np.zeros((3, 4)))

    def test_initial_inputs_cold_then_warm(self):
        model = random_ising(24, rng=2)
        program = AnnealProgram(model.coupling)
        spins = np.where(
            np.random.default_rng(0).uniform(size=(24, 3)) < 0.5, -1.0, 1.0
        )
        fields = model.fields
        cold = program.initial_inputs(spins, fields)
        assert (program.cold_starts, program.warm_hits) == (1, 0)
        np.testing.assert_allclose(
            cold, model.coupling @ spins + fields[:, None]
        )
        # Retain and come back with the same spins: served from cache.
        program.retain(spins, cold, fields)
        new_fields = fields + 1.5
        warm = program.initial_inputs(spins.copy(), new_fields)
        assert (program.cold_starts, program.warm_hits) == (1, 1)
        np.testing.assert_allclose(
            warm, model.coupling @ spins + new_fields[:, None]
        )
        # Different spins (or replica count) miss the cache.
        program.initial_inputs(-spins, fields)
        program.initial_inputs(spins[:, :2], fields)
        assert program.cold_starts == 3


class TestProgramBuiltOncePerSolve:
    """The block decomposition must be built per machine, not per run."""

    @pytest.mark.parametrize("machine_cls", [PBitMachine, MetropolisMachine])
    def test_one_program_across_reprogram_cycles(self, machine_cls, monkeypatch):
        calls = _counting_program(monkeypatch)
        model = random_ising(40, rng=3)
        machine = machine_cls(model, rng=0)
        assert calls["count"] == 0  # lazy: no block build before first run
        schedule = linear_beta_schedule(3.0, 10)
        rng = np.random.default_rng(1)
        for _ in range(6):  # six SAIM-style reprogram + anneal iterations
            machine.set_fields(rng.normal(size=40), offset=0.0)
            machine.anneal_many(schedule, 4)
        assert calls["count"] == 1
        assert machine.program.coupling is machine._program.coupling

    def test_serial_kernel_machine_never_builds_a_program(self, monkeypatch):
        calls = _counting_program(monkeypatch)
        machine = PBitMachine(random_ising(30, rng=8), rng=0, kernel="serial")
        schedule = linear_beta_schedule(3.0, 10)
        for _ in range(3):
            machine.anneal(schedule)
        assert calls["count"] == 0  # the python scan needs no block program

    def test_engine_solve_builds_one_program(self, monkeypatch):
        from repro.core.engine import SaimEngine
        from repro.core.saim import SaimConfig
        from repro.problems.generators import generate_qkp

        calls = _counting_program(monkeypatch)
        config = SaimConfig(num_iterations=8, mcs_per_run=30, eta=80.0,
                            eta_decay="sqrt", normalize_step=True)
        instance = generate_qkp(15, 0.5, rng=2)
        SaimEngine(config, num_replicas=2).solve(instance.to_problem(), rng=0)
        assert calls["count"] == 1

    def test_quantized_machine_programs_once(self, monkeypatch):
        calls = _counting_program(monkeypatch)
        machine = QuantizedPBitMachine(random_ising(20, rng=4), bits=8, rng=0)
        schedule = linear_beta_schedule(3.0, 8)
        for _ in range(3):
            machine.set_fields(np.zeros(20))
            machine.anneal_many(schedule, 2)
        assert calls["count"] == 1


class TestSerialKernelParity:
    """R=1 via lock-step == the retired pure-python scan (same samples)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pbit_trajectory_parity(self, seed):
        model = random_ising(50, rng=seed)
        schedule = linear_beta_schedule(4.0, 100)
        fast = PBitMachine(model, rng=seed).anneal(
            schedule, record_energy=True
        )
        reference = PBitMachine(model, rng=seed, kernel="serial").anneal(
            schedule, record_energy=True
        )
        np.testing.assert_array_equal(fast.last_sample, reference.last_sample)
        np.testing.assert_array_equal(fast.best_sample, reference.best_sample)
        np.testing.assert_allclose(
            fast.energy_trace, reference.energy_trace, rtol=1e-12, atol=1e-9
        )

    def test_pbit_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            PBitMachine(random_ising(4, rng=0), kernel="simd")

    def test_metropolis_kernel_knob(self):
        """Metropolis defaults to its serial random-scan reference; the
        lock-step opt-in runs the systematic-scan chain (valid, distinct
        stream) and still reprograms correctly."""
        model = random_ising(30, rng=5)
        schedule = linear_beta_schedule(3.0, 60)
        serial = MetropolisMachine(model, rng=0)
        assert serial.kernel == "serial"
        fast = MetropolisMachine(model, rng=0, kernel="lockstep")
        result = fast.anneal(schedule)
        assert result.last_energy == pytest.approx(
            fast.model.energy(result.last_sample), abs=1e-6
        )
        with pytest.raises(ValueError):
            MetropolisMachine(model, kernel="simd")


class TestSolveParityThroughFrontDoor:
    """Seeded repro.solve parity: default lock-step vs kernel="serial".

    Pinned on the paper's Fig. 2 toy Lagrangian and a QKP instance — the
    retired serial kernel must remain reachable through
    ``backend_options={"kernel": "serial"}`` and agree with the default
    path sample-for-sample.
    """

    @staticmethod
    def toy_problem():
        """Fig. 2's toy: min -(x-1)^2 over 3-bit x s.t. x = 2 (OPT -1)."""
        from repro.core.problem import ConstrainedProblem, LinearConstraints

        weights = np.array([1.0, 2.0, 4.0])
        gram = np.outer(weights, weights)
        quad = -gram
        np.fill_diagonal(quad, 0.0)
        linear = -np.diag(gram).copy() + 2.0 * weights
        return ConstrainedProblem(
            quadratic=quad,
            linear=linear,
            offset=-1.0,
            equalities=LinearConstraints(weights[None, :], np.array([2.0])),
            name="fig2-toy",
        )

    def _solve_pair(self, problem, **kwargs):
        import repro

        fast = repro.solve(problem, **kwargs)
        slow = repro.solve(
            problem, backend_options={"kernel": "serial"}, **kwargs
        )
        return fast, slow

    def test_fig2_toy_parity(self):
        fast, slow = self._solve_pair(
            self.toy_problem(), num_iterations=30, mcs_per_run=80, eta=1.0,
            rng=5,
        )
        assert fast.best_cost == slow.best_cost == pytest.approx(-1.0)
        np.testing.assert_array_equal(fast.best_x, slow.best_x)
        np.testing.assert_array_equal(
            fast.detail.trace.sample_costs, slow.detail.trace.sample_costs
        )
        np.testing.assert_array_equal(
            fast.detail.final_lambdas, slow.detail.final_lambdas
        )

    def test_qkp_parity(self):
        import repro

        instance = repro.generate_qkp(20, 0.5, rng=3)
        fast, slow = self._solve_pair(
            instance, num_iterations=25, mcs_per_run=100, eta=80.0,
            eta_decay="sqrt", normalize_step=True, rng=7,
        )
        assert fast.feasible and slow.feasible
        assert fast.best_cost == slow.best_cost
        np.testing.assert_array_equal(fast.best_x, slow.best_x)
        np.testing.assert_array_equal(
            fast.detail.trace.sample_costs, slow.detail.trace.sample_costs
        )


class TestWarmResident:
    def test_rerun_from_last_samples_hits_cache(self):
        model = random_ising(40, rng=6)
        schedule = linear_beta_schedule(4.0, 30)
        machine = PBitMachine(model, rng=1)
        first = machine.anneal_many(schedule, 4)
        assert machine.program.cold_starts == 1
        machine.anneal_many(schedule, 4, initial=first.last_samples)
        assert machine.program.warm_hits == 1

    def test_warm_start_equals_cold_start_from_same_spins(self):
        """The cached J@s path must not change the annealing outcome.

        Pinned on an *integer-weight* model: there both the incrementally
        accumulated cache and a fresh matmul are exact in float64, so the
        two paths are bit-equal by construction (on float weights they
        agree only to accumulation rounding, which could flip a
        measure-zero threshold tie on some BLAS).
        """
        rng = np.random.default_rng(7)
        upper = np.triu(
            rng.integers(-3, 4, size=(40, 40)).astype(float), k=1
        )
        from repro.ising.model import IsingModel

        model = IsingModel(
            upper + upper.T, rng.integers(-3, 4, size=40).astype(float)
        )
        schedule = linear_beta_schedule(4.0, 30)
        warm_machine = PBitMachine(model, rng=2)
        first = warm_machine.anneal_many(schedule, 3)
        warm = warm_machine.anneal_many(schedule, 3, initial=first.last_samples)
        assert warm_machine.program.warm_hits == 1

        # A cold machine fast-forwarded over the first run's noise draws
        # anneals the same spins without a resident cache.
        cold_machine = PBitMachine(model, rng=2)
        cold_machine.anneal_many(schedule, 3)
        cold_machine.program._resident_spins = None  # drop the cache
        cold = cold_machine.anneal_many(schedule, 3, initial=first.last_samples)
        assert cold_machine.program.cold_starts == 2
        np.testing.assert_array_equal(warm.last_samples, cold.last_samples)
        np.testing.assert_allclose(
            warm.last_energies, cold.last_energies, rtol=1e-12, atol=1e-9
        )


class TestEngineWarmRestart:
    CONFIG = None

    @staticmethod
    def _config(**overrides):
        from repro.core.saim import SaimConfig

        params = dict(num_iterations=10, mcs_per_run=50, eta=80.0,
                      eta_decay="sqrt", normalize_step=True)
        params.update(overrides)
        return SaimConfig(**params)

    def test_rejects_unknown_restart(self):
        from repro.core.engine import SaimEngine

        with pytest.raises(ValueError):
            SaimEngine(self._config(), restart="hot")

    @pytest.mark.parametrize("replicas", [1, 3])
    def test_warm_restart_reuses_resident_state(self, replicas):
        from repro.core.engine import SaimEngine
        from repro.problems.generators import generate_qkp

        made = []

        def factory(model, rng=None, dtype=None):
            machine = PBitMachine(model, rng=rng, dtype=dtype)
            made.append(machine)
            return machine

        instance = generate_qkp(15, 0.5, rng=4)
        result = SaimEngine(
            self._config(), num_replicas=replicas, restart="warm",
            machine_factory=factory,
        ).solve(instance.to_problem(), rng=0)
        assert result.num_iterations == 10
        (machine,) = made
        # Iteration 1 is the only cold start; 2..K resume resident spins.
        assert machine.program.cold_starts == 1
        assert machine.program.warm_hits == 9

    def test_warm_restart_finds_feasible_solutions(self):
        import repro

        instance = repro.generate_qkp(15, 0.5, rng=4)
        warm = repro.solve(
            instance, restart="warm", num_iterations=20, mcs_per_run=80,
            eta=80.0, eta_decay="sqrt", normalize_step=True, rng=1,
        )
        random = repro.solve(
            instance, restart="random", num_iterations=20, mcs_per_run=80,
            eta=80.0, eta_decay="sqrt", normalize_step=True, rng=1,
        )
        assert warm.feasible and random.feasible
        assert np.isfinite(warm.best_cost)

    def test_random_restart_is_the_unchanged_default(self):
        """restart="random" must reproduce the historical engine stream."""
        import repro

        instance = repro.generate_qkp(14, 0.5, rng=3)
        explicit = repro.solve(
            instance, restart="random", num_iterations=10, mcs_per_run=60,
            eta=80.0, eta_decay="sqrt", normalize_step=True, rng=7,
        )
        default = repro.solve(
            instance, num_iterations=10, mcs_per_run=60,
            eta=80.0, eta_decay="sqrt", normalize_step=True, rng=7,
        )
        assert explicit.best_cost == default.best_cost
        np.testing.assert_array_equal(
            explicit.detail.trace.sample_costs,
            default.detail.trace.sample_costs,
        )

    def test_pt_backend_rejects_warm_restart(self):
        """PT owns its replica init, so warm would be a silent no-op."""
        import repro

        instance = repro.generate_qkp(12, 0.5, rng=0)
        with pytest.raises(ValueError, match="pt"):
            repro.solve(
                instance, backend="pt", restart="warm",
                num_iterations=3, mcs_per_run=10,
            )

    def test_initial_less_legacy_machine_rejected_with_clear_error(self):
        """A serial anneal(schedule)-only machine can't warm-restart: the
        dispatcher must refuse cleanly, not TypeError mid-solve."""
        from repro.core.engine import SaimEngine
        from repro.problems.generators import generate_qkp

        class MinimalMachine:
            def __init__(self, model, rng=None):
                self._inner = PBitMachine(model, rng=rng)

            @property
            def num_spins(self):
                return self._inner.num_spins

            def set_fields(self, fields, offset=None):
                self._inner.set_fields(fields, offset)

            def anneal(self, beta_schedule):  # no initial= parameter
                return self._inner.anneal(beta_schedule)

        instance = generate_qkp(12, 0.5, rng=1)
        engine = SaimEngine(
            self._config(num_iterations=3), restart="warm",
            machine_factory=MinimalMachine,
        )
        with pytest.raises(ValueError, match="initial"):
            engine.solve(instance.to_problem(), rng=0)

    def test_backend_free_methods_reject_restart(self):
        import repro

        instance = repro.generate_qkp(12, 0.5, rng=0)
        with pytest.raises(ValueError, match="backend-free"):
            repro.solve(instance, method="greedy", restart="warm")

    def test_penalty_method_rejects_warm_restart(self):
        import repro

        instance = repro.generate_qkp(12, 0.5, rng=0)
        with pytest.raises(ValueError, match="restart"):
            repro.solve(
                instance, method="penalty", restart="warm",
                num_iterations=5, mcs_per_run=20,
            )
