"""Tests for parallel tempering (repro.ising.parallel_tempering)."""

import numpy as np
import pytest

from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.parallel_tempering import (
    geometric_beta_ladder,
    parallel_tempering,
)
from tests.helpers import random_ising


class TestLadder:
    def test_endpoints(self):
        ladder = geometric_beta_ladder(0.1, 10.0, 26)
        assert ladder[0] == pytest.approx(0.1)
        assert ladder[-1] == pytest.approx(10.0)
        assert ladder.size == 26

    def test_monotone(self):
        ladder = geometric_beta_ladder(0.5, 8.0, 10)
        assert np.all(np.diff(ladder) > 0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            geometric_beta_ladder(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            geometric_beta_ladder(2.0, 1.0, 5)
        with pytest.raises(ValueError):
            geometric_beta_ladder(0.1, 1.0, 1)


class TestParallelTempering:
    def test_result_shapes(self):
        model = random_ising(8, rng=0)
        result = parallel_tempering(model, num_sweeps=30, num_replicas=6, rng=0)
        assert result.replica_samples.shape == (6, 8)
        assert result.replica_energies.shape == (6,)
        assert 0.0 <= result.swap_acceptance <= 1.0

    def test_best_energy_consistent(self):
        model = random_ising(8, rng=1)
        result = parallel_tempering(model, num_sweeps=50, num_replicas=6, rng=0)
        assert result.best_energy == pytest.approx(
            model.energy(result.best_sample), abs=1e-6
        )

    def test_best_not_worse_than_replicas(self):
        model = random_ising(8, rng=2)
        result = parallel_tempering(model, num_sweeps=50, num_replicas=6, rng=1)
        assert result.best_energy <= result.replica_energies.min() + 1e-9

    @pytest.mark.parametrize("seed", range(2))
    def test_finds_ground_state(self, seed):
        model = random_ising(10, rng=seed)
        _, ground = brute_force_ground_state(model)
        result = parallel_tempering(
            model, num_sweeps=300, num_replicas=8, beta_min=0.2, beta_max=8.0,
            rng=seed,
        )
        assert result.best_energy == pytest.approx(ground, abs=1e-9)

    def test_swaps_happen(self):
        model = random_ising(8, rng=3)
        result = parallel_tempering(model, num_sweeps=100, num_replicas=8, rng=2)
        assert result.swap_acceptance > 0.0

    def test_rejects_bad_arguments(self):
        model = random_ising(4, rng=0)
        with pytest.raises(ValueError):
            parallel_tempering(model, num_sweeps=0)
        with pytest.raises(ValueError):
            parallel_tempering(model, num_sweeps=10, swap_interval=0)

    def test_deterministic_given_seed(self):
        model = random_ising(6, rng=4)
        a = parallel_tempering(model, num_sweeps=40, num_replicas=5, rng=7)
        b = parallel_tempering(model, num_sweeps=40, num_replicas=5, rng=7)
        assert a.best_energy == b.best_energy
        np.testing.assert_array_equal(a.best_sample, b.best_sample)
