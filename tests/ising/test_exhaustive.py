"""Tests for repro.ising.exhaustive (the oracle itself)."""

import numpy as np
import pytest

from repro.ising.energy import ising_energies, qubo_energies
from repro.ising.exhaustive import brute_force_ground_state, enumerate_energies
from repro.ising.model import IsingModel
from tests.helpers import all_binary_vectors, random_ising, random_qubo


class TestEnumerate:
    def test_matches_batch_eval_qubo(self):
        model = random_qubo(5, rng=0)
        xs = all_binary_vectors(5)
        np.testing.assert_allclose(enumerate_energies(model), qubo_energies(model, xs))

    def test_matches_batch_eval_ising(self):
        model = random_ising(5, rng=1)
        spins = 2.0 * all_binary_vectors(5) - 1.0
        np.testing.assert_allclose(
            enumerate_energies(model), ising_energies(model, spins)
        )

    def test_chunked_path(self):
        # n > 16 exercises the high-bits chunking branch.
        model = random_ising(17, rng=2, density=0.2)
        energies = enumerate_energies(model)
        assert energies.size == 2**17
        # Spot check a few codes.
        rng = np.random.default_rng(0)
        for code in rng.integers(0, 2**17, size=5):
            bits = ((int(code) >> np.arange(17)) & 1).astype(float)
            assert energies[code] == pytest.approx(model.energy(2 * bits - 1))

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            enumerate_energies(random_ising(25, rng=0))


class TestGroundState:
    def test_ferromagnet_ground_state(self):
        # All-equal spins minimize a ferromagnet (J > 0 in the paper's sign
        # convention: H = -J sum s_i s_j).
        n = 6
        coupling = np.ones((n, n)) - np.eye(n)
        model = IsingModel(coupling, np.zeros(n))
        state, energy = brute_force_ground_state(model)
        assert abs(state.sum()) == n
        assert energy == pytest.approx(-n * (n - 1) / 2)

    def test_field_alignment(self):
        # With no couplings, each spin aligns to its field.
        fields = np.array([1.0, -2.0, 0.5])
        model = IsingModel(np.zeros((3, 3)), fields)
        state, energy = brute_force_ground_state(model)
        np.testing.assert_array_equal(state, np.sign(fields))
        assert energy == pytest.approx(-np.abs(fields).sum())

    def test_qubo_ground_state_is_binary(self):
        model = random_qubo(6, rng=3)
        state, energy = brute_force_ground_state(model)
        assert set(np.unique(state)).issubset({0, 1})
        assert model.energy(state) == pytest.approx(energy)

    def test_ground_state_is_minimum(self):
        model = random_ising(8, rng=4)
        _, energy = brute_force_ground_state(model)
        assert energy == pytest.approx(enumerate_energies(model).min())
