"""Tests for sparse models and chromatic Gibbs (repro.ising.sparse)."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.sparse import (
    ChromaticPBitMachine,
    SparseIsingModel,
    greedy_coloring,
    random_sparse_ising,
)
from tests.helpers import random_ising


class TestSparseIsingModel:
    def test_from_dense_energy_agrees(self):
        dense = random_ising(10, rng=0, density=0.3)
        sparse_model = SparseIsingModel.from_dense(dense)
        rng = np.random.default_rng(1)
        for _ in range(10):
            spins = rng.choice([-1.0, 1.0], size=10)
            assert sparse_model.energy(spins) == pytest.approx(dense.energy(spins))

    def test_rejects_asymmetric(self):
        bad = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            SparseIsingModel(bad, np.zeros(2))

    def test_rejects_diagonal(self):
        bad = sp.csr_matrix(np.eye(3))
        with pytest.raises(ValueError, match="diagonal"):
            SparseIsingModel(bad, np.zeros(3))

    def test_graph_structure(self):
        model = random_sparse_ising(20, degree=3, rng=0)
        graph = model.to_graph()
        assert graph.number_of_nodes() == 20
        degrees = [d for _, d in graph.degree()]
        assert max(degrees) <= 20
        assert graph.number_of_edges() == model.coupling.nnz // 2


class TestColoring:
    def test_color_classes_are_independent_sets(self):
        model = random_sparse_ising(30, degree=4, rng=1)
        classes = greedy_coloring(model)
        coupling = model.coupling.toarray()
        for cls in classes:
            block = coupling[np.ix_(cls, cls)]
            assert np.all(block == 0)

    def test_classes_partition_spins(self):
        model = random_sparse_ising(26, degree=3, rng=2)
        classes = greedy_coloring(model)
        combined = np.sort(np.concatenate(classes))
        np.testing.assert_array_equal(combined, np.arange(26))

    def test_odd_degree_product_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_sparse_ising(25, degree=3, rng=0)

    def test_sparse_graph_needs_few_colors(self):
        model = random_sparse_ising(50, degree=3, rng=3)
        # Greedy coloring of a 3-regular graph uses at most 4 colors.
        assert len(greedy_coloring(model)) <= 4


class TestChromaticPBitMachine:
    def test_finds_ground_state_on_small_sparse_model(self):
        dense = random_ising(10, rng=4, density=0.3)
        _, ground = brute_force_ground_state(dense)
        machine = ChromaticPBitMachine(SparseIsingModel.from_dense(dense), rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(ground, abs=1e-9)

    def test_energy_consistency(self):
        model = random_sparse_ising(20, degree=3, rng=5)
        machine = ChromaticPBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(4.0, 80))
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-9
        )
        assert result.best_energy <= result.last_energy + 1e-9

    def test_num_colors_property(self):
        model = random_sparse_ising(30, degree=3, rng=6)
        machine = ChromaticPBitMachine(model, rng=0)
        assert machine.num_colors == len(greedy_coloring(model))
        assert machine.num_spins == 30

    def test_rejects_empty_schedule(self):
        machine = ChromaticPBitMachine(random_sparse_ising(10, rng=7), rng=0)
        with pytest.raises(ValueError):
            machine.anneal(np.array([]))

    def test_scales_to_large_sparse_models(self):
        # 500 spins would be hopeless dense; sparse handles it in ms.
        model = random_sparse_ising(500, degree=3, rng=8)
        machine = ChromaticPBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(3.0, 20))
        assert result.last_sample.shape == (500,)


class TestRandomSparseIsing:
    def test_degree_respected(self):
        model = random_sparse_ising(40, degree=5, rng=9)
        row_degrees = np.diff(model.coupling.indptr)
        assert np.all(row_degrees == 5)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            random_sparse_ising(10, degree=0)
        with pytest.raises(ValueError):
            random_sparse_ising(10, degree=10)
