"""Tests for sparse models and chromatic Gibbs (repro.ising.sparse)."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.sparse import (
    DENSE_STORAGE_DENSITY,
    ChromaticPBitMachine,
    SparseIsingModel,
    coupling_density,
    greedy_coloring,
    random_sparse_ising,
)
from tests.helpers import random_ising


def _model_with_density(n: int, density: float) -> SparseIsingModel:
    """Sparse model whose coupling density is exactly ``density``.

    Fills the first ``round(density * n * (n - 1) / 2)`` upper-triangle
    slots row by row, then symmetrizes.
    """
    num_edges = int(round(density * n * (n - 1) / 2))
    rows, cols = [], []
    for i in range(n):
        for j in range(i + 1, n):
            if len(rows) // 2 >= num_edges:
                break
            rows.extend((i, j))
            cols.extend((j, i))
    data = np.ones(len(rows))
    coupling = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return SparseIsingModel(coupling, np.zeros(n))


class TestStorageAutoSelection:
    """storage=None picks the per-color layout by coupling density."""

    def test_coupling_density_measures_offdiagonal_fill(self):
        model = _model_with_density(16, 0.5)
        assert coupling_density(model) == pytest.approx(0.5)
        assert coupling_density(_model_with_density(16, 0.0)) == 0.0

    def test_cutover_at_dense_storage_density(self):
        """The cutover sits exactly at DENSE_STORAGE_DENSITY (0.25)."""
        n = 33  # n*(n-1)/2 = 528 edges; 0.25 is exactly representable
        below = ChromaticPBitMachine(
            _model_with_density(n, DENSE_STORAGE_DENSITY - 0.05), rng=0
        )
        at = ChromaticPBitMachine(
            _model_with_density(n, DENSE_STORAGE_DENSITY), rng=0
        )
        above = ChromaticPBitMachine(
            _model_with_density(n, DENSE_STORAGE_DENSITY + 0.05), rng=0
        )
        assert below.storage == "csr"
        assert at.storage == "dense"
        assert above.storage == "dense"

    def test_sparse_graph_auto_selects_csr(self):
        machine = ChromaticPBitMachine(random_sparse_ising(40, degree=3, rng=1))
        assert machine.storage == "csr"

    def test_dense_problem_auto_selects_dense(self):
        machine = ChromaticPBitMachine.from_dense(random_ising(20, rng=2))
        assert machine.storage == "dense"

    def test_explicit_storage_overrides_heuristic(self):
        dense_model = SparseIsingModel.from_dense(random_ising(20, rng=3))
        assert ChromaticPBitMachine(dense_model, storage="csr").storage == "csr"
        sparse_model = random_sparse_ising(40, degree=3, rng=4)
        assert (
            ChromaticPBitMachine(sparse_model, storage="dense").storage
            == "dense"
        )
        assert ChromaticPBitMachine(sparse_model, storage="auto").storage == "csr"

    def test_bad_storage_rejected(self):
        with pytest.raises(ValueError):
            ChromaticPBitMachine(random_sparse_ising(10, rng=5), storage="coo")

    def test_auto_layouts_anneal_identically_on_integer_weights(self):
        """The heuristic only picks a layout — never a different chain."""
        model = _model_with_density(24, 0.3)  # auto would pick dense
        schedule = linear_beta_schedule(3.0, 25)
        auto = ChromaticPBitMachine(model, rng=9).anneal_many(schedule, 4)
        csr = ChromaticPBitMachine(model, rng=9, storage="csr").anneal_many(
            schedule, 4
        )
        np.testing.assert_array_equal(auto.last_samples, csr.last_samples)
        np.testing.assert_array_equal(auto.last_energies, csr.last_energies)


class TestSparseIsingModel:
    def test_from_dense_energy_agrees(self):
        dense = random_ising(10, rng=0, density=0.3)
        sparse_model = SparseIsingModel.from_dense(dense)
        rng = np.random.default_rng(1)
        for _ in range(10):
            spins = rng.choice([-1.0, 1.0], size=10)
            assert sparse_model.energy(spins) == pytest.approx(dense.energy(spins))

    def test_rejects_asymmetric(self):
        bad = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            SparseIsingModel(bad, np.zeros(2))

    def test_rejects_diagonal(self):
        bad = sp.csr_matrix(np.eye(3))
        with pytest.raises(ValueError, match="diagonal"):
            SparseIsingModel(bad, np.zeros(3))

    def test_graph_structure(self):
        model = random_sparse_ising(20, degree=3, rng=0)
        graph = model.to_graph()
        assert graph.number_of_nodes() == 20
        degrees = [d for _, d in graph.degree()]
        assert max(degrees) <= 20
        assert graph.number_of_edges() == model.coupling.nnz // 2


class TestColoring:
    def test_color_classes_are_independent_sets(self):
        model = random_sparse_ising(30, degree=4, rng=1)
        classes = greedy_coloring(model)
        coupling = model.coupling.toarray()
        for cls in classes:
            block = coupling[np.ix_(cls, cls)]
            assert np.all(block == 0)

    def test_classes_partition_spins(self):
        model = random_sparse_ising(26, degree=3, rng=2)
        classes = greedy_coloring(model)
        combined = np.sort(np.concatenate(classes))
        np.testing.assert_array_equal(combined, np.arange(26))

    def test_odd_degree_product_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_sparse_ising(25, degree=3, rng=0)

    def test_sparse_graph_needs_few_colors(self):
        model = random_sparse_ising(50, degree=3, rng=3)
        # Greedy coloring of a 3-regular graph uses at most 4 colors.
        assert len(greedy_coloring(model)) <= 4


class TestChromaticPBitMachine:
    def test_finds_ground_state_on_small_sparse_model(self):
        dense = random_ising(10, rng=4, density=0.3)
        _, ground = brute_force_ground_state(dense)
        machine = ChromaticPBitMachine(SparseIsingModel.from_dense(dense), rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(ground, abs=1e-9)

    def test_energy_consistency(self):
        model = random_sparse_ising(20, degree=3, rng=5)
        machine = ChromaticPBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(4.0, 80))
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-9
        )
        assert result.best_energy <= result.last_energy + 1e-9

    def test_num_colors_property(self):
        model = random_sparse_ising(30, degree=3, rng=6)
        machine = ChromaticPBitMachine(model, rng=0)
        assert machine.num_colors == len(greedy_coloring(model))
        assert machine.num_spins == 30

    def test_rejects_empty_schedule(self):
        machine = ChromaticPBitMachine(random_sparse_ising(10, rng=7), rng=0)
        with pytest.raises(ValueError):
            machine.anneal(np.array([]))

    def test_scales_to_large_sparse_models(self):
        # 500 spins would be hopeless dense; sparse handles it in ms.
        model = random_sparse_ising(500, degree=3, rng=8)
        machine = ChromaticPBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(3.0, 20))
        assert result.last_sample.shape == (500,)


class TestRandomSparseIsing:
    def test_degree_respected(self):
        model = random_sparse_ising(40, degree=5, rng=9)
        row_degrees = np.diff(model.coupling.indptr)
        assert np.all(row_degrees == 5)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            random_sparse_ising(10, degree=0)
        with pytest.raises(ValueError):
            random_sparse_ising(10, degree=10)
