"""Tests for higher-order Ising machines (repro.ising.higher_order)."""

import numpy as np
import pytest

from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.higher_order import (
    HigherOrderPBitMachine,
    PolyIsingModel,
    enumerate_poly_energies,
)
from tests.helpers import random_ising


def random_cubic_model(n: int, seed: int) -> PolyIsingModel:
    """Random model with 1-, 2-, and 3-spin interactions."""
    rng = np.random.default_rng(seed)
    terms = {}
    for i in range(n):
        terms[(i,)] = float(rng.uniform(-1, 1))
    for _ in range(2 * n):
        i, j = sorted(rng.choice(n, size=2, replace=False))
        terms[(int(i), int(j))] = float(rng.uniform(-1, 1))
    for _ in range(n):
        i, j, k = sorted(rng.choice(n, size=3, replace=False))
        terms[(int(i), int(j), int(k))] = float(rng.uniform(-1, 1))
    return PolyIsingModel(n, terms)


class TestPolyIsingModel:
    def test_quadratic_lift_preserves_energy(self):
        dense = random_ising(7, rng=0)
        poly = PolyIsingModel.from_quadratic(dense)
        rng = np.random.default_rng(1)
        for _ in range(10):
            spins = rng.choice([-1.0, 1.0], size=7)
            assert poly.energy(spins) == pytest.approx(dense.energy(spins))

    def test_max_order(self):
        model = random_cubic_model(6, seed=0)
        assert model.max_order == 3
        quad = PolyIsingModel.from_quadratic(random_ising(4, rng=0))
        assert quad.max_order == 2

    def test_term_key_normalization(self):
        # Unsorted index tuples collapse onto the same canonical term.
        model = PolyIsingModel(3, {(2, 0): 1.0, (0, 2): 1.0})
        assert model.terms == {(0, 2): 2.0}

    def test_rejects_repeated_indices(self):
        with pytest.raises(ValueError, match="repeated"):
            PolyIsingModel(3, {(1, 1): 1.0})

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            PolyIsingModel(2, {(0, 5): 1.0})

    def test_rejects_constant_terms(self):
        with pytest.raises(ValueError, match="offset"):
            PolyIsingModel(2, {(): 1.0})

    def test_cubic_energy_by_hand(self):
        # H = -c * s0 s1 s2 with c = 2: aligned spins give -2.
        model = PolyIsingModel(3, {(0, 1, 2): 2.0})
        assert model.energy([1, 1, 1]) == pytest.approx(-2.0)
        assert model.energy([1, -1, 1]) == pytest.approx(2.0)

    def test_local_field_matches_flip_delta(self):
        model = random_cubic_model(6, seed=2)
        rng = np.random.default_rng(3)
        spins = rng.choice([-1.0, 1.0], size=6)
        for i in range(6):
            field = model.local_field(spins, i)
            flipped = spins.copy()
            flipped[i] = -flipped[i]
            delta = model.energy(flipped) - model.energy(spins)
            assert delta == pytest.approx(2.0 * spins[i] * field, abs=1e-9)


class TestHigherOrderPBitMachine:
    def test_finds_cubic_ground_state(self):
        model = random_cubic_model(8, seed=4)
        exact = enumerate_poly_energies(model).min()
        machine = HigherOrderPBitMachine(model, rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(exact, abs=1e-9)

    def test_agrees_with_quadratic_machine_on_quadratic_model(self):
        dense = random_ising(8, rng=5)
        _, ground = brute_force_ground_state(dense)
        poly = PolyIsingModel.from_quadratic(dense)
        machine = HigherOrderPBitMachine(poly, rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(ground, abs=1e-9)

    def test_energy_bookkeeping(self):
        model = random_cubic_model(7, seed=6)
        machine = HigherOrderPBitMachine(model, rng=1)
        result = machine.anneal(linear_beta_schedule(4.0, 60))
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-6
        )

    def test_rejects_empty_schedule(self):
        machine = HigherOrderPBitMachine(random_cubic_model(4, seed=0))
        with pytest.raises(ValueError):
            machine.anneal(np.array([]))


class TestEnumeration:
    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            enumerate_poly_energies(random_cubic_model(21, seed=0))

    def test_matches_direct_eval(self):
        model = random_cubic_model(6, seed=7)
        energies = enumerate_poly_energies(model)
        for code in (0, 5, 63):
            bits = (code >> np.arange(6)) & 1
            assert energies[code] == pytest.approx(model.energy(2.0 * bits - 1.0))
