"""Tests for higher-order Ising machines (repro.ising.higher_order)."""

import numpy as np
import pytest

from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state, enumerate_energies
from repro.ising.higher_order import (
    HigherOrderPBitMachine,
    PolyIsingModel,
    enumerate_poly_energies,
)
from repro.ising.pbit import PBitMachine
from repro.utils.rng import spawn_rngs
from tests.helpers import random_ising


def random_cubic_model(n: int, seed: int) -> PolyIsingModel:
    """Random model with 1-, 2-, and 3-spin interactions."""
    rng = np.random.default_rng(seed)
    terms = {}
    for i in range(n):
        terms[(i,)] = float(rng.uniform(-1, 1))
    for _ in range(2 * n):
        i, j = sorted(rng.choice(n, size=2, replace=False))
        terms[(int(i), int(j))] = float(rng.uniform(-1, 1))
    for _ in range(n):
        i, j, k = sorted(rng.choice(n, size=3, replace=False))
        terms[(int(i), int(j), int(k))] = float(rng.uniform(-1, 1))
    return PolyIsingModel(n, terms)


class TestPolyIsingModel:
    def test_quadratic_lift_preserves_energy(self):
        dense = random_ising(7, rng=0)
        poly = PolyIsingModel.from_quadratic(dense)
        rng = np.random.default_rng(1)
        for _ in range(10):
            spins = rng.choice([-1.0, 1.0], size=7)
            assert poly.energy(spins) == pytest.approx(dense.energy(spins))

    def test_max_order(self):
        model = random_cubic_model(6, seed=0)
        assert model.max_order == 3
        quad = PolyIsingModel.from_quadratic(random_ising(4, rng=0))
        assert quad.max_order == 2

    def test_term_key_normalization(self):
        # Unsorted index tuples collapse onto the same canonical term.
        model = PolyIsingModel(3, {(2, 0): 1.0, (0, 2): 1.0})
        assert model.terms == {(0, 2): 2.0}

    def test_rejects_repeated_indices(self):
        with pytest.raises(ValueError, match="repeated"):
            PolyIsingModel(3, {(1, 1): 1.0})

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            PolyIsingModel(2, {(0, 5): 1.0})

    def test_rejects_constant_terms(self):
        with pytest.raises(ValueError, match="offset"):
            PolyIsingModel(2, {(): 1.0})

    def test_cubic_energy_by_hand(self):
        # H = -c * s0 s1 s2 with c = 2: aligned spins give -2.
        model = PolyIsingModel(3, {(0, 1, 2): 2.0})
        assert model.energy([1, 1, 1]) == pytest.approx(-2.0)
        assert model.energy([1, -1, 1]) == pytest.approx(2.0)

    def test_cancelled_duplicate_terms_are_pruned(self):
        # Regression: {(0,1): +1, (1,0): -1} must cancel to *no* term, not
        # survive as a 0.0 entry that inflates max_order and the machine's
        # per-spin term lists.
        model = PolyIsingModel(4, {(0, 1): 1.0, (1, 0): -1.0, (2,): 0.5})
        assert model.terms == {(2,): 0.5}
        assert model.max_order == 1
        machine = HigherOrderPBitMachine(model)
        assert all(ids.size == 0 for ids in machine._term_ids)
        # An exact-zero coefficient passed directly is pruned too.
        assert PolyIsingModel(3, {(0, 1): 0.0}).terms == {}
        assert PolyIsingModel(3, {(0, 1): 0.0}).max_order == 0

    def test_from_quadratic_sparse_matches_dense(self):
        # Regression: from_quadratic assumed a dense coupling; CSR-backed
        # models (the chromatic machine's storage) must lift identically.
        sp = pytest.importorskip("scipy.sparse")
        from repro.ising.sparse import SparseIsingModel

        dense = random_ising(9, rng=13, density=0.4)
        sparse = SparseIsingModel.from_dense(dense)
        assert sp.issparse(sparse.coupling)
        lifted_sparse = PolyIsingModel.from_quadratic(sparse)
        lifted_dense = PolyIsingModel.from_quadratic(dense)
        assert lifted_sparse.terms == lifted_dense.terms
        assert lifted_sparse.offset == lifted_dense.offset
        rng = np.random.default_rng(0)
        for _ in range(5):
            spins = rng.choice([-1.0, 1.0], size=9)
            assert lifted_sparse.energy(spins) == pytest.approx(
                dense.energy(spins), rel=1e-12
            )

    def test_local_field_matches_flip_delta(self):
        model = random_cubic_model(6, seed=2)
        rng = np.random.default_rng(3)
        spins = rng.choice([-1.0, 1.0], size=6)
        for i in range(6):
            field = model.local_field(spins, i)
            flipped = spins.copy()
            flipped[i] = -flipped[i]
            delta = model.energy(flipped) - model.energy(spins)
            assert delta == pytest.approx(2.0 * spins[i] * field, abs=1e-9)


class TestHigherOrderPBitMachine:
    def test_finds_cubic_ground_state(self):
        model = random_cubic_model(8, seed=4)
        exact = enumerate_poly_energies(model).min()
        machine = HigherOrderPBitMachine(model, rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(exact, abs=1e-9)

    def test_agrees_with_quadratic_machine_on_quadratic_model(self):
        dense = random_ising(8, rng=5)
        _, ground = brute_force_ground_state(dense)
        poly = PolyIsingModel.from_quadratic(dense)
        machine = HigherOrderPBitMachine(poly, rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(ground, abs=1e-9)

    def test_energy_bookkeeping(self):
        model = random_cubic_model(7, seed=6)
        machine = HigherOrderPBitMachine(model, rng=1)
        result = machine.anneal(linear_beta_schedule(4.0, 60))
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-6
        )

    def test_rejects_empty_schedule(self):
        machine = HigherOrderPBitMachine(random_cubic_model(4, seed=0))
        with pytest.raises(ValueError):
            machine.anneal(np.array([]))

    def test_incremental_energy_matches_recompute_over_long_anneal(self):
        # Regression: best/last energies come from incremental flip deltas
        # with no full recompute — over a long anneal they must still agree
        # with model.energy to float64 accuracy, and the best energy must be
        # genuinely attained by the best sample.
        model = random_cubic_model(12, seed=8)
        machine = HigherOrderPBitMachine(model, rng=3)
        schedule = linear_beta_schedule(6.0, 500)
        result = machine.anneal_many(schedule, 3, record_energy=True)
        for r in range(3):
            run = result.per_run(r)
            assert run.last_energy == pytest.approx(
                model.energy(run.last_sample), rel=1e-12, abs=1e-12
            )
            assert run.best_energy == pytest.approx(
                model.energy(run.best_sample), rel=1e-12, abs=1e-12
            )
            # best never misses a sweep-boundary energy (and may only beat
            # the trace via the pre-sweep initial state).
            assert run.best_energy <= np.min(run.energy_trace) + 1e-12

    def test_statistical_parity_with_quadratic_pbit_machine(self):
        # Same >= 0 threshold semantics as PBitMachine: on a lifted
        # quadratic model, ensembles from both machines should land in the
        # same energy range (seeded, so deterministic — this pins gross
        # semantic drift like a flipped threshold or halved beta).
        dense = random_ising(10, rng=11)
        poly = PolyIsingModel.from_quadratic(dense)
        schedule = linear_beta_schedule(4.0, 120)
        replicas = 48
        quad = PBitMachine(dense, rng=1).anneal_many(schedule, replicas)
        high = HigherOrderPBitMachine(poly, rng=2).anneal_many(
            schedule, replicas
        )
        mean_q = float(np.mean(quad.best_energies))
        mean_h = float(np.mean(high.best_energies))
        pooled = np.sqrt(
            np.var(quad.best_energies) / replicas
            + np.var(high.best_energies) / replicas
        )
        assert abs(mean_q - mean_h) <= 4.0 * pooled + 1e-9

    def test_batched_bit_identical_to_sequential_spawned_runs(self):
        # The R > 1 lock-step kernel must reproduce R serial runs on the
        # spawned child streams bit for bit — samples AND energies.
        model = random_cubic_model(9, seed=12)
        schedule = linear_beta_schedule(5.0, 80)
        replicas = 5
        batch = HigherOrderPBitMachine(
            model, rng=np.random.default_rng(99)
        ).anneal_many(schedule, replicas, record_energy=True)
        children = spawn_rngs(np.random.default_rng(99), replicas)
        for r in range(replicas):
            serial = HigherOrderPBitMachine(model, rng=children[r]).anneal(
                schedule, record_energy=True
            )
            np.testing.assert_array_equal(batch.last_samples[r], serial.last_sample)
            np.testing.assert_array_equal(batch.best_samples[r], serial.best_sample)
            assert batch.last_energies[r] == serial.last_energy
            assert batch.best_energies[r] == serial.best_energy
            np.testing.assert_array_equal(
                batch.energy_traces[r], serial.energy_trace
            )


class TestEnumeration:
    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            enumerate_poly_energies(random_cubic_model(21, seed=0))

    def test_matches_direct_eval(self):
        model = random_cubic_model(6, seed=7)
        energies = enumerate_poly_energies(model)
        for code in (0, 5, 63):
            bits = (code >> np.arange(6)) & 1
            assert energies[code] == pytest.approx(model.energy(2.0 * bits - 1.0))

    @pytest.mark.parametrize("seed", range(6))
    def test_bit_order_agrees_with_quadratic_exhaustive(self, seed):
        # Both enumerators use LSB-first bit -> spin index, bit 1 -> spin +1;
        # on a lifted quadratic model the full tables (hence the argmin
        # state) must agree.
        dense = random_ising(7, rng=seed)
        poly_energies = enumerate_poly_energies(PolyIsingModel.from_quadratic(dense))
        quad_energies = enumerate_energies(dense)
        np.testing.assert_allclose(
            poly_energies, quad_energies, rtol=1e-12, atol=1e-12
        )
        assert int(np.argmin(poly_energies)) == int(np.argmin(quad_energies))
