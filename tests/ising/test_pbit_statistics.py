"""Statistical equivalence checks between p-bit execution paths."""

import numpy as np

from repro.core.schedule import constant_beta_schedule, linear_beta_schedule
from repro.ising.pbit import PBitMachine
from tests.helpers import random_ising


class TestBatchSequentialEquivalence:
    def test_mean_final_energy_agrees(self):
        """Batched lock-step runs are R independent sequential chains: the
        mean annealed energy must agree between the two code paths."""
        model = random_ising(12, rng=0)
        schedule = linear_beta_schedule(4.0, 120)

        sequential = [
            PBitMachine(model, rng=100 + trial).anneal(schedule).last_energy
            for trial in range(40)
        ]
        batched = [
            run.last_energy
            for run in PBitMachine(model, rng=999).anneal_batch(schedule, 40)
        ]
        seq_mean = np.mean(sequential)
        bat_mean = np.mean(batched)
        spread = np.std(sequential) + np.std(batched) + 1e-9
        # Agreement within two pooled standard errors (loose, seeded).
        assert abs(seq_mean - bat_mean) < 2.0 * spread / np.sqrt(40)

    def test_fixed_beta_magnetization_agrees(self):
        """At fixed beta, per-spin magnetizations from both paths match."""
        model = random_ising(8, rng=1)
        schedule = constant_beta_schedule(0.8, 60)
        sequential_states = np.array([
            PBitMachine(model, rng=200 + t).anneal(schedule).last_sample
            for t in range(120)
        ])
        batched_states = np.array([
            run.last_sample
            for run in PBitMachine(model, rng=7).anneal_batch(schedule, 120)
        ])
        seq_mag = sequential_states.mean(axis=0)
        bat_mag = batched_states.mean(axis=0)
        np.testing.assert_allclose(seq_mag, bat_mag, atol=0.3)


class TestAnnealingBehaviour:
    def test_colder_final_beta_means_lower_energy(self):
        """Deeper anneals end in lower-energy states on average."""
        model = random_ising(14, rng=2)
        hot = [
            PBitMachine(model, rng=t).anneal(linear_beta_schedule(0.5, 80)).last_energy
            for t in range(20)
        ]
        cold = [
            PBitMachine(model, rng=t).anneal(linear_beta_schedule(6.0, 80)).last_energy
            for t in range(20)
        ]
        assert np.mean(cold) < np.mean(hot)

    def test_longer_anneals_do_not_hurt(self):
        model = random_ising(14, rng=3)
        short = [
            PBitMachine(model, rng=t).anneal(linear_beta_schedule(6.0, 30)).best_energy
            for t in range(15)
        ]
        long = [
            PBitMachine(model, rng=t).anneal(linear_beta_schedule(6.0, 300)).best_energy
            for t in range(15)
        ]
        assert np.mean(long) <= np.mean(short) + 1e-9

    def test_zero_beta_magnetization_is_unbiased(self):
        """At beta ~ 0 the sampler must be a fair coin per spin."""
        model = random_ising(10, rng=4)
        machine = PBitMachine(model, rng=5)
        samples = machine.sample_boltzmann(1e-12, num_sweeps=4000)
        np.testing.assert_allclose(samples.mean(axis=0), 0.0, atol=0.1)
