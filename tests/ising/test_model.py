"""Tests for repro.ising.model: QUBO/Ising containers and conversions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ising.model import IsingModel, QuboModel
from tests.helpers import all_binary_vectors, random_ising, random_qubo


class TestQuboModel:
    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            QuboModel(np.eye(2), np.zeros(2))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            QuboModel(np.array([[0.0, 1.0], [0.0, 0.0]]), np.zeros(2))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            QuboModel(np.zeros((2, 2)), np.zeros(3))

    def test_from_matrices_folds_diagonal(self):
        # x^T diag(d) x == d^T x for binary x.
        quad = np.array([[2.0, 1.0], [1.0, -3.0]])
        model = QuboModel.from_matrices(quad, np.array([0.5, 0.5]))
        np.testing.assert_array_equal(np.diag(model.quadratic), [0, 0])
        np.testing.assert_array_equal(model.linear, [2.5, -2.5])

    def test_from_matrices_symmetrizes(self):
        quad = np.array([[0.0, 4.0], [0.0, 0.0]])
        model = QuboModel.from_matrices(quad)
        assert model.quadratic[0, 1] == model.quadratic[1, 0] == 2.0

    def test_energy_by_hand(self):
        # E(x) = 2 x0 x1 - x0 + 3 x1 + 1 at x = (1, 1) is 2 - 1 + 3 + 1 = 5.
        model = QuboModel(
            np.array([[0.0, 1.0], [1.0, 0.0]]), np.array([-1.0, 3.0]), offset=1.0
        )
        assert model.energy([1, 1]) == pytest.approx(5.0)

    def test_num_variables(self):
        assert random_qubo(5, rng=0).num_variables == 5

    def test_scaled(self):
        model = random_qubo(4, rng=1)
        doubled = model.scaled(2.0)
        x = [1, 0, 1, 1]
        assert doubled.energy(x) == pytest.approx(2.0 * model.energy(x))


class TestIsingModel:
    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            IsingModel(np.eye(2), np.zeros(2))

    def test_energy_by_hand(self):
        # H = -J s0 s1 - h0 s0 - h1 s1 with J=1, h=(1, -1):
        # s = (+1, +1): -1 - 1 + 1 = -1.
        model = IsingModel(np.array([[0.0, 1.0], [1.0, 0.0]]), np.array([1.0, -1.0]))
        assert model.energy([1, 1]) == pytest.approx(-1.0)

    def test_density_complete(self):
        model = random_ising(6, rng=0, density=1.0)
        assert model.density == pytest.approx(1.0)

    def test_density_empty(self):
        model = IsingModel(np.zeros((4, 4)), np.ones(4))
        assert model.density == 0.0

    def test_with_fields_shares_coupling(self):
        model = random_ising(4, rng=2)
        updated = model.with_fields(np.zeros(4))
        assert updated.coupling is model.coupling
        np.testing.assert_array_equal(updated.fields, np.zeros(4))


class TestConversions:
    @pytest.mark.parametrize("seed", range(5))
    def test_qubo_to_ising_preserves_energy(self, seed):
        model = random_qubo(6, rng=seed)
        ising = model.to_ising()
        for x in all_binary_vectors(6):
            spins = 2.0 * x - 1.0
            assert ising.energy(spins) == pytest.approx(model.energy(x), abs=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_ising_to_qubo_preserves_energy(self, seed):
        model = random_ising(6, rng=seed)
        qubo = model.to_qubo()
        for x in all_binary_vectors(6):
            spins = 2.0 * x - 1.0
            assert qubo.energy(x) == pytest.approx(model.energy(spins), abs=1e-9)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_is_identity(self, seed):
        model = random_qubo(5, rng=seed)
        back = model.to_ising().to_qubo()
        np.testing.assert_allclose(back.quadratic, model.quadratic, atol=1e-9)
        np.testing.assert_allclose(back.linear, model.linear, atol=1e-9)
        assert back.offset == pytest.approx(model.offset, abs=1e-9)
