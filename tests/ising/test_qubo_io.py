"""Tests for qbsolv-format QUBO I/O (repro.ising.qubo_io)."""

import numpy as np
import pytest

from repro.ising.qubo_io import read_qubo, write_qubo
from tests.helpers import all_binary_vectors, random_qubo


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_energies_preserved(self, tmp_path, seed):
        model = random_qubo(7, rng=seed)
        path = tmp_path / "model.qubo"
        write_qubo(model, path)
        loaded = read_qubo(path)
        for x in all_binary_vectors(7)[:32]:
            assert loaded.energy(x) == pytest.approx(model.energy(x), abs=1e-9)

    def test_exact_matrices(self, tmp_path):
        model = random_qubo(5, rng=10)
        path = tmp_path / "m.qubo"
        write_qubo(model, path)
        loaded = read_qubo(path)
        np.testing.assert_allclose(loaded.quadratic, model.quadratic, atol=1e-12)
        np.testing.assert_allclose(loaded.linear, model.linear, atol=1e-12)
        assert loaded.offset == pytest.approx(model.offset)

    def test_comment_written(self, tmp_path):
        model = random_qubo(3, rng=0)
        path = tmp_path / "c.qubo"
        write_qubo(model, path, comment="penalized QKP\nP = 2dN")
        text = path.read_text()
        assert "c penalized QKP" in text
        assert "c P = 2dN" in text

    def test_penalized_problem_roundtrip(self, tmp_path):
        """End-to-end: the QUBO SAIM would ship to external hardware."""
        from repro.core.encoding import encode_with_slacks, normalize_problem
        from repro.core.penalty import build_penalty_qubo
        from repro.problems.generators import generate_qkp

        instance = generate_qkp(8, 0.5, rng=3)
        encoded = encode_with_slacks(instance.to_problem())
        normalized, _ = normalize_problem(encoded.problem)
        qubo = build_penalty_qubo(normalized, 5.0)
        path = tmp_path / "qkp.qubo"
        write_qubo(qubo, path)
        loaded = read_qubo(path)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = (rng.uniform(0, 1, qubo.num_variables) < 0.5).astype(np.int8)
            assert loaded.energy(x) == pytest.approx(qubo.energy(x), abs=1e-9)


class TestReader:
    def test_plain_qbsolv_file_without_offset(self, tmp_path):
        path = tmp_path / "plain.qubo"
        path.write_text("p qubo 0 2 1 1\n0 0 -1.5\n0 1 2.0\n")
        model = read_qubo(path)
        assert model.offset == 0.0
        assert model.linear[0] == -1.5
        # Coupler 2.0 splits across the symmetric triangles.
        assert model.quadratic[0, 1] == 1.0

    def test_duplicate_entries_accumulate(self, tmp_path):
        path = tmp_path / "dup.qubo"
        path.write_text("p qubo 0 2 2 0\n0 0 1.0\n0 0 2.0\n")
        model = read_qubo(path)
        assert model.linear[0] == 3.0

    def test_missing_problem_line_rejected(self, tmp_path):
        path = tmp_path / "bad.qubo"
        path.write_text("c just a comment\n")
        with pytest.raises(ValueError, match="no problem line"):
            read_qubo(path)

    def test_data_before_problem_line_rejected(self, tmp_path):
        path = tmp_path / "early.qubo"
        path.write_text("0 0 1.0\np qubo 0 1 1 0\n")
        with pytest.raises(ValueError, match="before problem line"):
            read_qubo(path)

    def test_out_of_range_index_rejected(self, tmp_path):
        path = tmp_path / "range.qubo"
        path.write_text("p qubo 0 2 0 1\n0 5 1.0\n")
        with pytest.raises(ValueError, match="out of range"):
            read_qubo(path)
