"""Tests for fixed-point quantization (repro.ising.quantization)."""

import numpy as np
import pytest

from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.model import IsingModel
from repro.ising.quantization import (
    QuantizationSpec,
    QuantizedPBitMachine,
    quantization_error,
    quantize_ising,
)
from tests.helpers import random_ising


class TestQuantizationSpec:
    def test_levels(self):
        assert QuantizationSpec(4).levels == 7
        assert QuantizationSpec(8).levels == 127

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            QuantizationSpec(1)

    def test_quantize_is_idempotent(self):
        spec = QuantizationSpec(5)
        values = np.array([0.3, -0.7, 1.0, 0.0])
        once = spec.quantize(values)
        np.testing.assert_allclose(spec.quantize(once, scale=1.0), once)

    def test_full_scale_preserved(self):
        spec = QuantizationSpec(6)
        values = np.array([-2.0, 1.0, 0.5])
        quantized = spec.quantize(values)
        assert quantized.min() == pytest.approx(-2.0)

    def test_zero_input(self):
        spec = QuantizationSpec(4)
        np.testing.assert_array_equal(spec.quantize(np.zeros(3)), np.zeros(3))

    def test_saturation(self):
        spec = QuantizationSpec(4)
        out = spec.quantize(np.array([10.0, -10.0]), scale=1.0)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(-1.0)


class TestQuantizeIsing:
    def test_error_decreases_with_bits(self):
        model = random_ising(10, rng=0)
        errors = [quantization_error(model, bits) for bits in (2, 4, 8, 16)]
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_high_precision_is_nearly_exact(self):
        model = random_ising(8, rng=1)
        assert quantization_error(model, 24) < 1e-6

    def test_model_structure_preserved(self):
        model = random_ising(8, rng=2)
        quantized = quantize_ising(model, 8)
        assert quantized.num_spins == model.num_spins
        np.testing.assert_allclose(quantized.coupling, quantized.coupling.T)
        assert np.all(np.diag(quantized.coupling) == 0)

    def test_ground_state_survives_moderate_quantization(self):
        # With a non-degenerate spectrum, 12 bits keep the ground state.
        model = random_ising(8, rng=3)
        _, exact = brute_force_ground_state(model)
        _, quantized_ground = brute_force_ground_state(quantize_ising(model, 12))
        assert quantized_ground == pytest.approx(exact, rel=1e-2)


class TestQuantizedPBitMachine:
    def test_bits_property(self):
        machine = QuantizedPBitMachine(random_ising(6, rng=0), bits=6)
        assert machine.bits == 6

    def test_finds_ground_state_at_8_bits(self):
        model = random_ising(10, rng=4)
        _, ground = brute_force_ground_state(model)
        machine = QuantizedPBitMachine(model, bits=8, rng=0)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        # The machine optimizes the quantized Hamiltonian; evaluate its
        # answer on the exact model for comparison.
        assert best <= ground + 0.05 * abs(ground)

    def test_set_fields_saturates(self):
        model = IsingModel(np.zeros((3, 3)), np.array([1.0, -1.0, 0.5]))
        machine = QuantizedPBitMachine(model, bits=4, rng=0)
        machine.set_fields(np.array([100.0, -100.0, 0.0]))
        fields = machine.model.fields
        assert fields[0] == pytest.approx(1.0)  # clipped to full scale
        assert fields[1] == pytest.approx(-1.0)

    def test_reprogrammed_fields_live_on_grid(self):
        model = random_ising(5, rng=5)
        machine = QuantizedPBitMachine(model, bits=4, rng=0)
        machine.set_fields(np.array([0.123, -0.456, 0.789, 0.0, 0.321]))
        spec = QuantizationSpec(4)
        fields = machine.model.fields
        np.testing.assert_allclose(
            spec.quantize(fields, scale=machine._full_scale), fields, atol=1e-12
        )
