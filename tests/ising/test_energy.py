"""Tests for repro.ising.energy kernels (batch and incremental)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ising.energy import (
    all_flip_deltas,
    flip_delta,
    input_fields,
    ising_energies,
    ising_energy,
    qubo_energies,
    qubo_energy,
)
from tests.helpers import all_binary_vectors, random_ising, random_qubo


class TestBatchEnergies:
    def test_qubo_batch_matches_scalar(self):
        model = random_qubo(6, rng=0)
        xs = all_binary_vectors(6)
        batch = qubo_energies(model, xs)
        for row, expected in zip(xs, batch):
            assert qubo_energy(model, row) == pytest.approx(expected)

    def test_ising_batch_matches_scalar(self):
        model = random_ising(6, rng=1)
        spins = 2.0 * all_binary_vectors(6) - 1.0
        batch = ising_energies(model, spins)
        for row, expected in zip(spins, batch):
            assert ising_energy(model, row) == pytest.approx(expected)

    def test_batch_requires_2d(self):
        model = random_qubo(3, rng=0)
        with pytest.raises(ValueError, match="2-D"):
            qubo_energies(model, np.zeros(3))
        ising = random_ising(3, rng=0)
        with pytest.raises(ValueError, match="2-D"):
            ising_energies(ising, np.ones(3))


class TestIncremental:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_flip_delta_matches_recomputation(self, seed):
        rng = np.random.default_rng(seed)
        model = random_ising(7, rng=rng)
        spins = rng.choice([-1.0, 1.0], size=7)
        fields = input_fields(model, spins)
        index = int(rng.integers(0, 7))
        flipped = spins.copy()
        flipped[index] = -flipped[index]
        expected = ising_energy(model, flipped) - ising_energy(model, spins)
        assert flip_delta(spins, fields, index) == pytest.approx(expected, abs=1e-9)

    def test_all_flip_deltas_match_individual(self):
        rng = np.random.default_rng(4)
        model = random_ising(8, rng=rng)
        spins = rng.choice([-1.0, 1.0], size=8)
        fields = input_fields(model, spins)
        deltas = all_flip_deltas(spins, fields)
        for i in range(8):
            assert deltas[i] == pytest.approx(flip_delta(spins, fields, i))

    def test_input_fields_definition(self):
        model = random_ising(5, rng=9)
        spins = np.ones(5)
        expected = model.coupling @ spins + model.fields
        np.testing.assert_allclose(input_fields(model, spins), expected)
