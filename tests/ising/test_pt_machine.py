"""Tests for the PT machine adapter (repro.ising.pt_machine)."""

import numpy as np
import pytest

from repro.core.saim import SaimConfig, SelfAdaptiveIsingMachine
from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.pt_machine import PTMachine
from tests.helpers import random_ising, tiny_knapsack_problem


class TestPTMachine:
    def test_interface(self):
        model = random_ising(8, rng=0)
        machine = PTMachine(model, rng=0)
        assert machine.num_spins == 8
        machine.set_fields(np.zeros(8), offset=2.0)
        assert machine.model.offset == 2.0

    def test_anneal_result_consistency(self):
        model = random_ising(8, rng=1)
        machine = PTMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(6.0, 80))
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-6
        )
        assert result.best_energy <= result.last_energy + 1e-9

    def test_finds_ground_state(self):
        model = random_ising(10, rng=2)
        _, ground = brute_force_ground_state(model)
        machine = PTMachine(model, rng=0, num_replicas=8)
        result = machine.anneal(linear_beta_schedule(8.0, 250))
        assert result.best_energy == pytest.approx(ground, abs=1e-9)

    def test_best_read_out(self):
        model = random_ising(8, rng=3)
        machine = PTMachine(model, rng=0, read_out="best")
        result = machine.anneal(linear_beta_schedule(6.0, 60))
        assert result.last_energy == pytest.approx(result.best_energy)

    def test_rejects_bad_read_out(self):
        with pytest.raises(ValueError):
            PTMachine(random_ising(4, rng=0), read_out="median")

    def test_rejects_empty_schedule(self):
        machine = PTMachine(random_ising(4, rng=0))
        with pytest.raises(ValueError):
            machine.anneal(np.array([]))

    def test_set_fields_shape_checked(self):
        machine = PTMachine(random_ising(4, rng=0))
        with pytest.raises(ValueError):
            machine.set_fields(np.zeros(5))


class TestSaimWithPT:
    def test_saim_pt_solves_knapsack(self):
        """SAIM driving parallel tempering as its inner minimizer."""
        config = SaimConfig(num_iterations=25, mcs_per_run=80)

        def factory(model, rng):
            return PTMachine(model, rng=rng, num_replicas=6)

        saim = SelfAdaptiveIsingMachine(config, machine_factory=factory)
        result = saim.solve(tiny_knapsack_problem(), rng=1)
        assert result.found_feasible
        assert result.best_cost == pytest.approx(-8.0)

    def test_saim_pt_with_best_read_out(self):
        config = SaimConfig(num_iterations=20, mcs_per_run=60)

        def factory(model, rng):
            return PTMachine(model, rng=rng, num_replicas=6, read_out="best")

        result = SelfAdaptiveIsingMachine(config, machine_factory=factory).solve(
            tiny_knapsack_problem(), rng=1
        )
        assert result.found_feasible
