"""Fused block-diagonal fleet annealing: packer, kernel, no-crosstalk.

The headline contract (``repro.ising.fleet``): instance ``b`` of a fused
fleet anneal is *bit-identical* to a standalone :class:`PBitMachine` run on
the same spawned stream — samples, energies and traces, at every dtype and
replica count, whatever subset of the fleet is active.  The cross-backend
no-crosstalk property behind it is pinned separately: on a block-diagonal
Hamiltonian a backend's rows for instance A must be unaffected by instance
B's fields.
"""

import numpy as np
import pytest

import repro
from repro.core.schedule import linear_beta_schedule
from repro.ising.backend import dispatch_anneal_many
from repro.ising.fleet import FleetMachine, FleetProgram
from repro.ising.model import IsingModel
from repro.ising.pbit import PBitMachine
from repro.utils.rng import spawn_rngs
from tests.helpers import random_ising

# Ragged on purpose: exercises multi-block instances (n > 32), a full
# 32-aligned instance, and tiny tails inside one padded block.
SIZES = (11, 40, 17, 33, 5)
DTYPES = ("float64", "float32")


def fleet_models(sizes=SIZES, seed=0):
    return [random_ising(n, rng=seed + index) for index, n in enumerate(sizes)]


def fleet_schedule(sweeps=12):
    """Linear ramp from beta=0: includes the pure-noise sweep edge case."""
    return linear_beta_schedule(2.0, sweeps, beta_min=0.0)


def standalone_results(models, seed, num_replicas, dtype,
                       record_energy=False, sweeps=12):
    """What each instance must reproduce: its own PBitMachine on its own
    spawned stream."""
    streams = spawn_rngs(seed, len(models))
    out = []
    for model, stream in zip(models, streams):
        machine = PBitMachine(model, rng=stream, dtype=dtype)
        out.append(machine.anneal_many(
            fleet_schedule(sweeps), num_replicas,
            record_energy=record_energy,
        ))
    return out


def assert_batches_equal(actual, expected, traces=False):
    np.testing.assert_array_equal(actual.last_samples, expected.last_samples)
    np.testing.assert_array_equal(actual.best_samples, expected.best_samples)
    np.testing.assert_array_equal(
        actual.last_energies, expected.last_energies
    )
    np.testing.assert_array_equal(
        actual.best_energies, expected.best_energies
    )
    if traces:
        np.testing.assert_array_equal(
            actual.energy_traces, expected.energy_traces
        )


class TestFleetProgram:
    def test_padding_is_block_aligned(self):
        program = FleetProgram([m.coupling for m in fleet_models()])
        assert program.padded_spins == 64  # max(SIZES)=40 -> 2 blocks of 32
        assert program.max_spins == 40
        assert list(program.sizes) == list(SIZES)

    def test_sub_stacks_shapes(self):
        program = FleetProgram([m.coupling for m in fleet_models()])
        assert len(program.sub_stacks) == 2
        for stack in program.sub_stacks:
            assert stack.shape == (len(SIZES), 32, 32)

    def test_block_width(self):
        program = FleetProgram([m.coupling for m in fleet_models()])
        assert program.block_width(1, 0) == 32   # n=40: full first block
        assert program.block_width(1, 32) == 8   # ...8-row tail
        assert program.block_width(4, 0) == 5    # n=5 fits the first block
        assert program.block_width(4, 32) == 0   # ...and owns no tail rows

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one instance"):
            FleetProgram([])

    def test_set_fields_validates_shape(self):
        program = FleetProgram([m.coupling for m in fleet_models()])
        with pytest.raises(ValueError, match="shape"):
            program.set_fields(0, np.zeros(SIZES[0] + 1))

    def test_set_fields_copies(self):
        program = FleetProgram([m.coupling for m in fleet_models()])
        buf = np.ones(SIZES[0])
        program.set_fields(0, buf, 2.0)
        buf[:] = -7.0  # caller reuses the buffer; packed copy must not move
        assert program.fields[0, : SIZES[0]].max() == 1.0
        assert program.offsets[0] == 2.0


class TestFleetMachineValidation:
    def test_requires_ising_models(self):
        with pytest.raises(TypeError, match="IsingModel"):
            FleetMachine([np.eye(3)])

    def test_explicit_rngs_must_match_count(self):
        models = fleet_models()
        with pytest.raises(ValueError, match="Generators"):
            FleetMachine(models, rng=[np.random.default_rng(0)])

    def test_explicit_rngs_must_be_generators(self):
        models = fleet_models()
        with pytest.raises(ValueError, match="Generators"):
            FleetMachine(models, rng=[1] * len(models))

    def test_active_indices_validated(self):
        machine = FleetMachine(fleet_models(), rng=0)
        with pytest.raises(ValueError, match="unique"):
            machine.anneal_fleet(fleet_schedule(), active=[0, 0])
        with pytest.raises(ValueError, match="out of range"):
            machine.anneal_fleet(fleet_schedule(), active=[99])
        with pytest.raises(ValueError, match="at least one"):
            machine.anneal_fleet(fleet_schedule(), active=[])

    def test_record_energy_needs_track_best(self):
        machine = FleetMachine(fleet_models(), rng=0)
        with pytest.raises(ValueError, match="track_best"):
            machine.anneal_fleet(
                fleet_schedule(), record_energy=True, track_best=False
            )

    def test_inactive_instance_lookup_raises(self):
        machine = FleetMachine(fleet_models(), rng=0)
        result = machine.anneal_fleet(fleet_schedule(4), active=[0, 2])
        with pytest.raises(KeyError, match="not annealed"):
            result.instance(1)


class TestFleetBitIdentity:
    """Fused per-instance chains == standalone machines, bit for bit."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("num_replicas", [1, 3])
    def test_matches_standalone(self, dtype, num_replicas):
        models = fleet_models()
        machine = FleetMachine(models, rng=42, dtype=dtype)
        fused = machine.anneal_fleet(
            fleet_schedule(), num_replicas, record_energy=True
        )
        expected = standalone_results(
            models, 42, num_replicas, dtype, record_energy=True
        )
        for index in range(len(models)):
            assert_batches_equal(
                fused.instance(index), expected[index], traces=True
            )

    def test_active_subset_is_invariant(self):
        """An instance's chain is the same whatever else is active."""
        models = fleet_models()
        full = FleetMachine(models, rng=7).anneal_fleet(fleet_schedule(), 2)
        subset = FleetMachine(models, rng=7).anneal_fleet(
            fleet_schedule(), 2, active=[1, 3]
        )
        for index in (1, 3):
            assert_batches_equal(subset.instance(index), full.instance(index))

    def test_untracked_last_equals_tracked_last(self):
        """track_best=False must not perturb the chain or its read-out."""
        models = fleet_models()
        tracked = FleetMachine(models, rng=5).anneal_fleet(
            fleet_schedule(), 2, track_best=True
        )
        untracked = FleetMachine(models, rng=5).anneal_fleet(
            fleet_schedule(), 2, track_best=False
        )
        for index in range(len(models)):
            got = untracked.instance(index)
            want = tracked.instance(index)
            np.testing.assert_array_equal(got.last_samples, want.last_samples)
            np.testing.assert_array_equal(
                got.last_energies, want.last_energies
            )
            # Untracked best_* alias the final state by contract.
            np.testing.assert_array_equal(got.best_samples, got.last_samples)

    def test_set_fields_reprograms_one_instance(self):
        """The engine's set_fields-many contract: reprogramming instance b
        changes b's chain only (other streams are untouched)."""
        models = fleet_models()
        base = FleetMachine(models, rng=3).anneal_fleet(fleet_schedule(), 1)
        moved = FleetMachine(models, rng=3)
        moved.set_fields(2, models[2].fields + 5.0, models[2].offset)
        shifted = moved.anneal_fleet(fleet_schedule(), 1)
        for index in (0, 1, 3, 4):
            assert_batches_equal(shifted.instance(index), base.instance(index))
        assert not np.array_equal(
            shifted.instance(2).last_energies, base.instance(2).last_energies
        )

    def test_energies_match_independent_recomputation(self):
        """Fused float64 energies == energies recomputed from the samples
        via the model's own Hamiltonian (to float64 accounting tolerance),
        per instance."""
        models = fleet_models()
        fused = FleetMachine(models, rng=11).anneal_fleet(fleet_schedule(), 4)
        for index, model in enumerate(models):
            batch = fused.instance(index)
            recomputed = np.array(
                [model.energy(s) for s in batch.last_samples]
            )
            np.testing.assert_allclose(
                batch.last_energies, recomputed, rtol=1e-9, atol=1e-9
            )


def block_diagonal(model_a: IsingModel, model_b: IsingModel,
                   b_fields=None) -> IsingModel:
    """A (+) B with B's couplings ZEROED — pure block-diagonal fixture.

    ``model_a``'s coefficients are scaled up so they dominate the global
    magnitude: the quantized backend derives its full-scale range from
    ``max(|J|, |h|)`` over the whole model, so fixtures must pin that
    maximum inside A or changing B's fields would re-quantize A's rows.
    """
    n_a, n_b = model_a.num_spins, model_b.num_spins
    coupling = np.zeros((n_a + n_b, n_a + n_b))
    coupling[:n_a, :n_a] = model_a.coupling * 5.0
    fields = np.concatenate([
        model_a.fields * 5.0,
        model_b.fields if b_fields is None else np.asarray(b_fields),
    ])
    return IsingModel(coupling, fields, offset=model_a.offset)


class TestBlockDiagonalNoCrosstalk:
    """Every backend: A's rows are deaf to B's fields across the zero block.

    This is the invariant the fused fleet is built on.  Row-identity to a
    *standalone* run of A alone is deliberately not asserted here: the
    single-stream kernels draw ``(n, R)``-shaped noise, so a different
    total ``n`` shifts every subsequent draw — that identity needs
    per-instance streams and is exactly what :class:`FleetMachine`
    provides (pinned above).  What must hold for any correct backend is
    that with zero cross-couplings, instance A's trajectory cannot depend
    on instance B's *fields*: same machine, same seed, same shapes, B's
    fields changed — A's rows bit-identical.
    """

    @pytest.mark.parametrize("name", tuple(repro.available_backends()))
    @pytest.mark.parametrize("num_replicas", [1, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_a_rows_ignore_b_fields(self, name, num_replicas, seed):
        if name == "pt":
            pytest.skip(
                "parallel tempering has cross-instance coupling by design: "
                "replica-exchange acceptances compare GLOBAL chain energies, "
                "so instance B's field energy steers which chains swap and "
                "A's rows move with it (the fused fleet path excludes pt "
                "for the same reason)"
            )
        model_a = random_ising(9, rng=seed)
        model_b = random_ising(6, rng=seed + 50)
        factory = repro.make_backend_factory(name)
        schedule = linear_beta_schedule(2.5, 10)
        results = []
        for b_fields in (None, -model_b.fields * 0.3 + 0.05):
            machine = factory(
                block_diagonal(model_a, model_b, b_fields), rng=seed + 7
            )
            results.append(dispatch_anneal_many(
                machine, schedule, num_replicas
            ))
        # last_samples are the chain state: any dependence on B's fields is
        # crosstalk.  best_samples are NOT asserted — "best" is selected by
        # GLOBAL chain energy, which legitimately includes B's field term,
        # so changing B's fields may pick a different sweep as best for the
        # whole chain without A's trajectory moving at all.  (The fused
        # fleet tracks best per instance, which is why it doesn't inherit
        # this ambiguity — see TestFleetBitIdentity.)
        np.testing.assert_array_equal(
            results[0].last_samples[:, :9], results[1].last_samples[:, :9]
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fleet_energy_decomposition(self, seed):
        """The fused machine on [A, B] reports exactly the energies of the
        block-diagonal model restricted to each instance's rows (float64):
        no energy leaks across the zero blocks."""
        model_a = random_ising(9, rng=seed)
        model_b = random_ising(6, rng=seed + 50)
        fused = FleetMachine([model_a, model_b], rng=seed).anneal_fleet(
            fleet_schedule(10), 4
        )
        for index, model in enumerate((model_a, model_b)):
            batch = fused.instance(index)
            recomputed = np.array(
                [model.energy(s) for s in batch.last_samples]
            )
            np.testing.assert_allclose(
                batch.last_energies, recomputed, rtol=1e-12, atol=1e-12
            )
