"""Tests for the p-bit Ising machine (repro.ising.pbit)."""

import numpy as np
import pytest

from repro.core.schedule import constant_beta_schedule, linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state, enumerate_energies
from repro.ising.model import IsingModel
from repro.ising.pbit import PBitMachine
from tests.helpers import random_ising


class TestBasics:
    def test_rejects_empty_schedule(self):
        machine = PBitMachine(random_ising(4, rng=0))
        with pytest.raises(ValueError):
            machine.anneal(np.array([]))

    def test_rejects_bad_initial_shape(self):
        machine = PBitMachine(random_ising(4, rng=0))
        with pytest.raises(ValueError):
            machine.anneal(np.ones(10), initial=np.ones(3))

    def test_last_energy_is_consistent(self):
        model = random_ising(8, rng=1)
        machine = PBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(5.0, 100))
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-6
        )

    def test_best_energy_is_consistent(self):
        model = random_ising(8, rng=2)
        machine = PBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(5.0, 100))
        assert result.best_energy == pytest.approx(
            model.energy(result.best_sample), abs=1e-6
        )

    def test_best_never_worse_than_last(self):
        machine = PBitMachine(random_ising(10, rng=3), rng=0)
        result = machine.anneal(linear_beta_schedule(3.0, 80))
        assert result.best_energy <= result.last_energy + 1e-9

    def test_energy_trace_recorded(self):
        machine = PBitMachine(random_ising(6, rng=4), rng=0)
        result = machine.anneal(linear_beta_schedule(2.0, 50), record_energy=True)
        assert result.energy_trace.shape == (50,)
        assert result.energy_trace[-1] == pytest.approx(result.last_energy)

    def test_samples_are_spin_valued(self):
        machine = PBitMachine(random_ising(6, rng=5), rng=0)
        result = machine.anneal(linear_beta_schedule(2.0, 30))
        assert set(np.unique(result.last_sample)).issubset({-1.0, 1.0})

    def test_set_fields_changes_target(self):
        model = random_ising(5, rng=6)
        machine = PBitMachine(model, rng=0)
        new_fields = np.full(5, 10.0)  # strong positive fields
        machine.set_fields(new_fields, offset=0.0)
        result = machine.anneal(linear_beta_schedule(10.0, 100))
        # All spins should align up under overwhelming fields.
        assert result.last_sample.sum() == pytest.approx(5.0)

    def test_set_fields_shape_checked(self):
        machine = PBitMachine(random_ising(5, rng=7))
        with pytest.raises(ValueError):
            machine.set_fields(np.zeros(6))

    def test_deterministic_given_seed(self):
        model = random_ising(8, rng=8)
        schedule = linear_beta_schedule(4.0, 60)
        a = PBitMachine(model, rng=11).anneal(schedule)
        b = PBitMachine(model, rng=11).anneal(schedule)
        np.testing.assert_array_equal(a.last_sample, b.last_sample)
        assert a.last_energy == b.last_energy


class TestGroundStateSearch:
    @pytest.mark.parametrize("seed", range(3))
    def test_finds_ground_state_of_small_models(self, seed):
        model = random_ising(10, rng=seed)
        _, ground = brute_force_ground_state(model)
        machine = PBitMachine(model, rng=100 + seed)
        best = min(
            machine.anneal(linear_beta_schedule(8.0, 300)).best_energy
            for _ in range(5)
        )
        assert best == pytest.approx(ground, abs=1e-9)

    def test_ferromagnet_aligns(self):
        n = 12
        coupling = np.ones((n, n)) - np.eye(n)
        model = IsingModel(coupling, np.zeros(n))
        machine = PBitMachine(model, rng=0)
        result = machine.anneal(linear_beta_schedule(5.0, 200))
        assert abs(result.best_sample.sum()) == n


class TestBatch:
    def test_batch_shape_and_consistency(self):
        model = random_ising(8, rng=9)
        machine = PBitMachine(model, rng=0)
        runs = machine.anneal_batch(linear_beta_schedule(4.0, 50), num_runs=7)
        assert len(runs) == 7
        for run in runs:
            assert run.last_energy == pytest.approx(
                model.energy(run.last_sample), abs=1e-6
            )
            assert run.best_energy <= run.last_energy + 1e-9

    def test_batch_rejects_bad_args(self):
        machine = PBitMachine(random_ising(4, rng=0))
        with pytest.raises(ValueError):
            machine.anneal_batch(np.ones(10), num_runs=0)

    def test_batch_finds_ground_state(self):
        model = random_ising(10, rng=10)
        _, ground = brute_force_ground_state(model)
        machine = PBitMachine(model, rng=1)
        runs = machine.anneal_batch(linear_beta_schedule(8.0, 300), num_runs=10)
        assert min(run.best_energy for run in runs) == pytest.approx(ground, abs=1e-9)

    def test_batch_runs_are_distinct(self):
        # With beta = 0 every sweep is uniform-random; runs must differ.
        model = IsingModel(np.zeros((16, 16)), np.zeros(16))
        machine = PBitMachine(model, rng=2)
        runs = machine.anneal_batch(constant_beta_schedule(1e-12, 3), num_runs=5)
        samples = {run.last_sample.tobytes() for run in runs}
        assert len(samples) > 1


class TestBoltzmannSampling:
    def test_matches_exact_distribution(self):
        """Gibbs sampling must reproduce eq. 11 on a tiny model."""
        model = random_ising(4, rng=13)
        beta = 0.7
        machine = PBitMachine(model, rng=3)
        samples = machine.sample_boltzmann(beta, num_sweeps=20000, burn_in=500)
        codes = ((samples > 0).astype(int) * (2 ** np.arange(4))).sum(axis=1)
        counts = np.bincount(codes, minlength=16) / codes.size

        energies = enumerate_energies(model)
        weights = np.exp(-beta * (energies - energies.min()))
        probabilities = weights / weights.sum()
        # Loose tolerance: 20k correlated Gibbs samples.
        np.testing.assert_allclose(counts, probabilities, atol=0.03)

    def test_zero_beta_is_uniform(self):
        model = random_ising(3, rng=14)
        machine = PBitMachine(model, rng=4)
        samples = machine.sample_boltzmann(1e-12, num_sweeps=8000)
        codes = ((samples > 0).astype(int) * (2 ** np.arange(3))).sum(axis=1)
        counts = np.bincount(codes, minlength=8) / codes.size
        np.testing.assert_allclose(counts, np.full(8, 1 / 8), atol=0.03)

    def test_rejects_nonpositive_sweeps(self):
        machine = PBitMachine(random_ising(3, rng=0))
        with pytest.raises(ValueError):
            machine.sample_boltzmann(1.0, num_sweeps=0)
