"""Tests for Metropolis simulated annealing (repro.ising.sa)."""

import numpy as np
import pytest

from repro.core.schedule import linear_beta_schedule
from repro.ising.exhaustive import brute_force_ground_state
from repro.ising.model import IsingModel
from repro.ising.sa import simulated_annealing
from tests.helpers import random_ising


class TestSimulatedAnnealing:
    def test_energies_consistent(self):
        model = random_ising(8, rng=0)
        result = simulated_annealing(model, linear_beta_schedule(5.0, 100), rng=0)
        assert result.last_energy == pytest.approx(
            model.energy(result.last_sample), abs=1e-6
        )
        assert result.best_energy == pytest.approx(
            model.energy(result.best_sample), abs=1e-6
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_finds_ground_state(self, seed):
        model = random_ising(10, rng=seed)
        _, ground = brute_force_ground_state(model)
        best = min(
            simulated_annealing(
                model, linear_beta_schedule(8.0, 300), rng=50 + trial
            ).best_energy
            for trial in range(5)
        )
        assert best == pytest.approx(ground, abs=1e-9)

    def test_deterministic_given_seed(self):
        model = random_ising(7, rng=5)
        schedule = linear_beta_schedule(4.0, 60)
        a = simulated_annealing(model, schedule, rng=9)
        b = simulated_annealing(model, schedule, rng=9)
        np.testing.assert_array_equal(a.last_sample, b.last_sample)

    def test_record_energy(self):
        model = random_ising(6, rng=6)
        result = simulated_annealing(
            model, linear_beta_schedule(3.0, 40), rng=0, record_energy=True
        )
        assert result.energy_trace.shape == (40,)
        assert result.energy_trace[-1] == pytest.approx(result.last_energy)

    def test_high_beta_is_descent(self):
        # At very large beta, Metropolis only accepts improving flips, so the
        # energy trace must be non-increasing.
        model = random_ising(10, rng=7)
        result = simulated_annealing(
            model, np.full(50, 1e6), rng=1, record_energy=True
        )
        diffs = np.diff(result.energy_trace)
        assert np.all(diffs <= 1e-9)

    def test_initial_state_respected(self):
        start = np.array([1.0, -1.0, 1.0, -1.0])
        # Fields aligned with the start state: every flip strictly raises the
        # energy, so at huge beta nothing moves.
        model = IsingModel(np.zeros((4, 4)), start.copy())
        result = simulated_annealing(model, np.full(1, 1e9), rng=0, initial=start)
        np.testing.assert_array_equal(result.last_sample, start)

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError):
            simulated_annealing(random_ising(4, rng=0), np.array([]))
