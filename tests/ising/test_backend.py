"""Contract and statistical tests for the AnnealingBackend protocol.

The contract suite **auto-discovers** every backend registered with the
front door (``repro.available_backends()``), so a newly registered machine
is pulled into the contract the moment it is registered — it cannot
silently skip these tests.  Each backend must return array-shaped
:class:`BatchAnnealResult` objects (natively or via the serial-dispatch
fallback), report energies consistent with its own Hamiltonian, keep doing
so after ``set_fields`` reprogramming, and hold its shape contract at
big replica counts (R >= 128) in both storage dtypes.

The statistical sections validate the batched kernels against exact
Boltzmann weights on tiny models, and the ``R = 1`` dispatch against the
serial reference kernels bit-for-bit.
"""

import numpy as np
import pytest

import repro
from repro.core.schedule import constant_beta_schedule, linear_beta_schedule
from repro.ising.backend import (
    AnnealingBackend,
    BatchAnnealResult,
    batch_from_runs,
    dispatch_anneal_many,
    resolve_dtype,
)
from repro.ising.exhaustive import enumerate_energies
from repro.ising.pbit import PBitMachine
from repro.ising.pt_machine import PTMachine
from repro.ising.sa import MetropolisMachine
from repro.ising.sparse import ChromaticPBitMachine, random_sparse_ising
from tests.helpers import random_ising

N = 10
REPLICAS = 5
SCHEDULE = linear_beta_schedule(3.0, 40)

# The registry IS the discovery mechanism: registering a backend opts it
# into this file's whole contract.
BACKENDS = tuple(repro.available_backends())
DTYPES = ("float64", "float32")


def _machine(name: str, model=None, rng=1, dtype=None):
    """One machine instance of a registered backend, via its factory."""
    if model is None:
        model = random_ising(N, rng=0)
    return repro.make_backend_factory(name)(model, rng=rng, dtype=dtype)


class TestRegistryDiscovery:
    def test_known_backends_are_registered(self):
        """The ships-with set must be present (guards registry regressions)."""
        for name in ("pbit", "metropolis", "quantized", "chromatic", "pt"):
            assert name in BACKENDS

    @pytest.mark.parametrize("name", BACKENDS)
    def test_factory_builds_a_drivable_machine(self, name):
        """Every registered factory yields the SAIM-drivable surface."""
        machine = _machine(name)
        assert machine.num_spins == N
        assert callable(machine.set_fields)
        # Protocol natively, or serial `anneal` served by the dispatcher.
        assert isinstance(machine, AnnealingBackend) or callable(
            getattr(machine, "anneal", None)
        )

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_factory_accepts_both_dtypes(self, name, dtype):
        machine = _machine(name, dtype=dtype)
        assert machine.dtype == resolve_dtype(dtype)


class TestBatchResultContract:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_shapes_and_dtypes(self, name):
        machine = _machine(name)
        batch = dispatch_anneal_many(machine, SCHEDULE, REPLICAS)
        assert isinstance(batch, BatchAnnealResult)
        assert batch.num_replicas == REPLICAS
        assert batch.num_spins == N
        assert batch.last_samples.shape == (REPLICAS, N)
        assert batch.best_samples.shape == (REPLICAS, N)
        assert batch.last_energies.shape == (REPLICAS,)
        assert batch.best_energies.shape == (REPLICAS,)
        for arr in (batch.last_samples, batch.last_energies,
                    batch.best_samples, batch.best_energies):
            assert arr.dtype == np.float64
        assert batch.num_sweeps == SCHEDULE.size
        np.testing.assert_array_equal(np.abs(batch.last_samples), 1.0)
        np.testing.assert_array_equal(np.abs(batch.best_samples), 1.0)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_energies_consistent_with_samples(self, name):
        machine = _machine(name)
        model = machine.model
        batch = dispatch_anneal_many(machine, SCHEDULE, REPLICAS)
        for r in range(REPLICAS):
            last = model.energy(batch.last_samples[r])
            best = model.energy(batch.best_samples[r])
            assert batch.last_energies[r] == pytest.approx(last, abs=1e-8)
            assert batch.best_energies[r] == pytest.approx(best, abs=1e-8)
            assert batch.best_energies[r] <= batch.last_energies[r] + 1e-9

    @pytest.mark.parametrize("name", BACKENDS)
    def test_energies_stay_consistent_after_set_fields(self, name):
        """Reprogramming fields (SAIM's hot path) must retarget read-outs."""
        machine = _machine(name)
        rng = np.random.default_rng(9)
        machine.set_fields(rng.uniform(-1, 1, size=N), offset=0.25)
        model = machine.model  # reflects the (possibly re-quantized) fields
        batch = dispatch_anneal_many(machine, SCHEDULE, 3)
        for r in range(3):
            assert batch.last_energies[r] == pytest.approx(
                model.energy(batch.last_samples[r]), abs=1e-8
            )

    @pytest.mark.parametrize("name", BACKENDS)
    def test_set_fields_copies_never_aliases(self, name):
        """The caller owns its fields array (the engine reuses one buffer
        across iterations), so a machine must copy on ``set_fields`` —
        mutating the array afterwards must not leak into the machine."""
        machine = _machine(name)
        fields = np.linspace(-1.0, 1.0, N)
        machine.set_fields(fields, offset=0.0)
        programmed = np.asarray(machine.model.fields, dtype=float).copy()
        fields[:] = 1e6  # caller reuses the buffer for something else
        np.testing.assert_array_equal(
            np.asarray(machine.model.fields, dtype=float), programmed
        )

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("replicas", [1, 8, 128])
    def test_shape_contract_at_any_replica_count(self, name, dtype, replicas):
        """R >= 128 exercises the big-R batched kernels in both dtypes."""
        model = random_ising(8, rng=2)
        machine = _machine(name, model=model, rng=4, dtype=dtype)
        schedule = linear_beta_schedule(2.0, 6)
        batch = dispatch_anneal_many(machine, schedule, replicas)
        assert batch.num_replicas == replicas
        assert batch.last_samples.shape == (replicas, 8)
        assert batch.best_samples.shape == (replicas, 8)
        assert np.all(np.isfinite(batch.last_energies))
        np.testing.assert_array_equal(np.abs(batch.last_samples), 1.0)

    def test_per_run_views_and_iteration(self):
        machine = _machine("pbit")
        batch = machine.anneal_many(SCHEDULE, 3)
        runs = list(batch)
        assert len(batch) == 3 and len(runs) == 3
        for r, run in enumerate(runs):
            np.testing.assert_array_equal(run.last_sample, batch.last_samples[r])
            assert run.last_energy == batch.last_energies[r]
            assert run.num_sweeps == batch.num_sweeps

    @pytest.mark.parametrize("name", ["pbit", "metropolis", "chromatic"])
    def test_initial_state_shape_checked(self, name):
        machine = _machine(name)
        with pytest.raises(ValueError):
            machine.anneal_many(SCHEDULE, 3, initial=np.ones((2, N)))

    def test_batch_from_runs_round_trip(self):
        machine = _machine("pbit")
        runs = [machine.anneal(SCHEDULE) for _ in range(3)]
        batch = batch_from_runs(runs)
        assert batch.num_replicas == 3
        np.testing.assert_array_equal(batch.last_samples[1], runs[1].last_sample)

    def test_malformed_shapes_rejected(self):
        with pytest.raises(ValueError):
            BatchAnnealResult(
                last_samples=np.ones((2, 4)),
                last_energies=np.zeros(3),  # wrong length
                best_samples=np.ones((2, 4)),
                best_energies=np.zeros(2),
                num_sweeps=5,
            )

    def test_pt_machine_usable_via_fallback(self):
        machine = PTMachine(random_ising(N, rng=0), rng=3)
        batch = dispatch_anneal_many(machine, SCHEDULE, 3)
        assert isinstance(batch, BatchAnnealResult)
        assert batch.last_samples.shape == (3, N)


class TestSerialViewBitParity:
    """``anneal`` must be the exact R=1 view of ``anneal_many``."""

    def test_pbit_anneal_equals_anneal_many_r1(self):
        model = random_ising(12, rng=4)
        serial = PBitMachine(model, rng=77).anneal(SCHEDULE)
        batch = PBitMachine(model, rng=77).anneal_many(SCHEDULE, 1)
        np.testing.assert_array_equal(serial.last_sample, batch.last_samples[0])
        np.testing.assert_array_equal(serial.best_sample, batch.best_samples[0])
        assert serial.last_energy == batch.last_energies[0]
        assert serial.best_energy == batch.best_energies[0]

    def test_metropolis_anneal_equals_anneal_many_r1(self):
        model = random_ising(12, rng=4)
        serial = MetropolisMachine(model, rng=77).anneal(SCHEDULE)
        batch = MetropolisMachine(model, rng=77).anneal_many(SCHEDULE, 1)
        np.testing.assert_array_equal(serial.last_sample, batch.last_samples[0])
        assert serial.last_energy == batch.last_energies[0]

    def test_chromatic_anneal_equals_anneal_many_r1(self):
        sparse_model = random_sparse_ising(12, degree=3, rng=4)
        serial = ChromaticPBitMachine(sparse_model, rng=77).anneal(SCHEDULE)
        batch = ChromaticPBitMachine(sparse_model, rng=77).anneal_many(SCHEDULE, 1)
        np.testing.assert_array_equal(serial.last_sample, batch.last_samples[0])
        assert serial.last_energy == batch.last_energies[0]

    def test_chromatic_matches_independent_serial_reference(self):
        """Pin the chromatic noise stream against a from-scratch loop.

        ``anneal`` delegates to ``anneal_many`` these days, so this
        reference — the historical color-by-color serial Gibbs sweep,
        re-implemented here independently — is what keeps the shared path
        honest about its draw order (one uniform per class member per
        color per sweep, after one draw per spin for the initial state).
        """
        model = random_sparse_ising(12, degree=3, rng=4)
        machine = ChromaticPBitMachine(model, rng=77)
        result = machine.anneal(SCHEDULE)

        from repro.ising.sparse import greedy_coloring

        rng = np.random.default_rng(77)  # ensure_rng(77) is default_rng(77)
        colors = greedy_coloring(model)
        spins = rng.choice(np.array([-1.0, 1.0]), size=model.num_spins)
        best_energy = model.energy(spins)
        best_sample = spins.copy()
        for beta in SCHEDULE:
            for color in colors:
                inputs = model.coupling[color] @ spins + model.fields[color]
                noise = rng.uniform(-1.0, 1.0, size=color.size)
                spins[color] = np.where(
                    np.tanh(beta * inputs) + noise >= 0.0, 1.0, -1.0
                )
            energy = model.energy(spins)
            if energy < best_energy:
                best_energy = energy
                best_sample = spins.copy()

        np.testing.assert_array_equal(result.last_sample, spins)
        np.testing.assert_array_equal(result.best_sample, best_sample)
        assert result.best_energy == pytest.approx(best_energy, abs=1e-9)


class TestBoltzmannEquivalence:
    """Batched and repeated-serial sampling agree with exact eq. (11)."""

    @staticmethod
    def _exact_mean_energy(model, beta):
        energies = enumerate_energies(model)
        weights = np.exp(-beta * (energies - energies.min()))
        weights /= weights.sum()
        return float(weights @ energies)

    def test_batched_pbit_matches_exact_boltzmann(self):
        model = random_ising(4, rng=6, density=1.0)
        beta = 0.7
        exact = self._exact_mean_energy(model, beta)
        # Long fixed-temperature schedule: the last sample is Boltzmann.
        schedule = constant_beta_schedule(beta, 30)
        machine = PBitMachine(model, rng=11)
        batch = machine.anneal_many(schedule, 400)
        batched_mean = float(batch.last_energies.mean())

        serial_energies = [
            PBitMachine(model, rng=500 + t).anneal(schedule).last_energy
            for t in range(200)
        ]
        serial_mean = float(np.mean(serial_energies))

        spread = float(np.std(batch.last_energies))
        # Both execution paths within a few standard errors of the exact
        # Boltzmann average (and of each other).
        assert abs(batched_mean - exact) < 4.0 * spread / np.sqrt(400)
        assert abs(serial_mean - exact) < 4.0 * spread / np.sqrt(200)

    def test_float32_pbit_matches_exact_boltzmann(self):
        """The reduced-precision scan must sample the same distribution."""
        model = random_ising(4, rng=6, density=1.0)
        beta = 0.7
        exact = self._exact_mean_energy(model, beta)
        schedule = constant_beta_schedule(beta, 30)
        batch = PBitMachine(model, rng=19, dtype="float32").anneal_many(
            schedule, 400
        )
        spread = float(np.std(batch.last_energies))
        assert abs(float(batch.last_energies.mean()) - exact) \
            < 4.0 * spread / np.sqrt(400)

    def test_batched_metropolis_matches_exact_boltzmann(self):
        model = random_ising(4, rng=8, density=1.0)
        beta = 0.7
        exact = self._exact_mean_energy(model, beta)
        schedule = constant_beta_schedule(beta, 30)
        batch = MetropolisMachine(model, rng=13).anneal_many(schedule, 400)
        spread = float(np.std(batch.last_energies))
        assert abs(float(batch.last_energies.mean()) - exact) \
            < 4.0 * spread / np.sqrt(400)

    def test_batched_chromatic_matches_exact_boltzmann_on_sparse(self):
        sparse_model = random_sparse_ising(8, degree=3, rng=5)
        beta = 0.6
        machine = ChromaticPBitMachine(sparse_model, rng=17)
        assert machine.num_colors < 8  # genuinely parallel update groups
        schedule = constant_beta_schedule(beta, 30)
        batch = machine.anneal_many(schedule, 400)

        # Exact Boltzmann average over all 2^8 states of the sparse model.
        n = sparse_model.num_spins
        codes = np.arange(2 ** n)
        spins = 2.0 * ((codes[:, None] >> np.arange(n)) & 1) - 1.0
        energies = np.array([sparse_model.energy(s) for s in spins])
        weights = np.exp(-beta * (energies - energies.min()))
        weights /= weights.sum()
        exact = float(weights @ energies)

        spread = float(np.std(batch.last_energies))
        assert abs(float(batch.last_energies.mean()) - exact) \
            < 4.0 * spread / np.sqrt(400)
