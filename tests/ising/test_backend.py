"""Contract and statistical tests for the AnnealingBackend protocol.

Every machine must return array-shaped :class:`BatchAnnealResult` objects
from ``anneal_many``, the batched kernels must be statistically equivalent
to repeated serial runs (validated against exact Boltzmann weights on a tiny
model), and the ``R = 1`` dispatch must stay bit-exact with the serial
reference kernels.
"""

import numpy as np
import pytest

from repro.core.schedule import constant_beta_schedule, linear_beta_schedule
from repro.ising.backend import (
    AnnealingBackend,
    BatchAnnealResult,
    batch_from_runs,
    dispatch_anneal_many,
)
from repro.ising.exhaustive import enumerate_energies
from repro.ising.pbit import PBitMachine
from repro.ising.pt_machine import PTMachine
from repro.ising.quantization import QuantizedPBitMachine
from repro.ising.sa import MetropolisMachine
from repro.ising.sparse import ChromaticPBitMachine, random_sparse_ising
from tests.helpers import random_ising

N = 10
REPLICAS = 5
SCHEDULE = linear_beta_schedule(3.0, 40)


def _machines():
    """One instance of each of the four protocol backends (dense model)."""
    model = random_ising(N, rng=0)
    return {
        "pbit": PBitMachine(model, rng=1),
        "metropolis": MetropolisMachine(model, rng=1),
        "quantized": QuantizedPBitMachine(model, bits=10, rng=1),
        "chromatic": ChromaticPBitMachine.from_dense(model, rng=1),
    }


class TestProtocolConformance:
    @pytest.mark.parametrize("name", ["pbit", "metropolis", "quantized",
                                      "chromatic"])
    def test_backends_satisfy_protocol(self, name):
        machine = _machines()[name]
        assert isinstance(machine, AnnealingBackend)
        assert machine.num_spins == N

    def test_pt_machine_usable_via_fallback(self):
        machine = PTMachine(random_ising(N, rng=0), rng=3)
        batch = dispatch_anneal_many(machine, SCHEDULE, 3)
        assert isinstance(batch, BatchAnnealResult)
        assert batch.last_samples.shape == (3, N)


class TestBatchResultContract:
    @pytest.mark.parametrize("name", ["pbit", "metropolis", "quantized",
                                      "chromatic"])
    def test_shapes_and_dtypes(self, name):
        machine = _machines()[name]
        batch = machine.anneal_many(SCHEDULE, REPLICAS)
        assert isinstance(batch, BatchAnnealResult)
        assert batch.num_replicas == REPLICAS
        assert batch.num_spins == N
        assert batch.last_samples.shape == (REPLICAS, N)
        assert batch.best_samples.shape == (REPLICAS, N)
        assert batch.last_energies.shape == (REPLICAS,)
        assert batch.best_energies.shape == (REPLICAS,)
        for arr in (batch.last_samples, batch.last_energies,
                    batch.best_samples, batch.best_energies):
            assert arr.dtype == np.float64
        assert batch.num_sweeps == SCHEDULE.size
        np.testing.assert_array_equal(np.abs(batch.last_samples), 1.0)
        np.testing.assert_array_equal(np.abs(batch.best_samples), 1.0)

    @pytest.mark.parametrize("name", ["pbit", "metropolis", "quantized",
                                      "chromatic"])
    def test_energies_consistent_with_samples(self, name):
        machine = _machines()[name]
        model = machine.model
        batch = machine.anneal_many(SCHEDULE, REPLICAS)
        for r in range(REPLICAS):
            last = model.energy(batch.last_samples[r])
            best = model.energy(batch.best_samples[r])
            assert batch.last_energies[r] == pytest.approx(last, abs=1e-8)
            assert batch.best_energies[r] == pytest.approx(best, abs=1e-8)
            assert batch.best_energies[r] <= batch.last_energies[r] + 1e-9

    def test_per_run_views_and_iteration(self):
        machine = _machines()["pbit"]
        batch = machine.anneal_many(SCHEDULE, 3)
        runs = list(batch)
        assert len(batch) == 3 and len(runs) == 3
        for r, run in enumerate(runs):
            np.testing.assert_array_equal(run.last_sample, batch.last_samples[r])
            assert run.last_energy == batch.last_energies[r]
            assert run.num_sweeps == batch.num_sweeps

    def test_initial_state_shape_checked(self):
        machine = _machines()["pbit"]
        with pytest.raises(ValueError):
            machine.anneal_many(SCHEDULE, 3, initial=np.ones((2, N)))

    def test_batch_from_runs_round_trip(self):
        machine = _machines()["pbit"]
        runs = [machine.anneal(SCHEDULE) for _ in range(3)]
        batch = batch_from_runs(runs)
        assert batch.num_replicas == 3
        np.testing.assert_array_equal(batch.last_samples[1], runs[1].last_sample)

    def test_malformed_shapes_rejected(self):
        with pytest.raises(ValueError):
            BatchAnnealResult(
                last_samples=np.ones((2, 4)),
                last_energies=np.zeros(3),  # wrong length
                best_samples=np.ones((2, 4)),
                best_energies=np.zeros(2),
                num_sweeps=5,
            )


class TestSerialViewBitParity:
    """``anneal`` must be the exact R=1 view of ``anneal_many``."""

    def test_pbit_anneal_equals_anneal_many_r1(self):
        model = random_ising(12, rng=4)
        serial = PBitMachine(model, rng=77).anneal(SCHEDULE)
        batch = PBitMachine(model, rng=77).anneal_many(SCHEDULE, 1)
        np.testing.assert_array_equal(serial.last_sample, batch.last_samples[0])
        np.testing.assert_array_equal(serial.best_sample, batch.best_samples[0])
        assert serial.last_energy == batch.last_energies[0]
        assert serial.best_energy == batch.best_energies[0]

    def test_metropolis_anneal_equals_anneal_many_r1(self):
        model = random_ising(12, rng=4)
        serial = MetropolisMachine(model, rng=77).anneal(SCHEDULE)
        batch = MetropolisMachine(model, rng=77).anneal_many(SCHEDULE, 1)
        np.testing.assert_array_equal(serial.last_sample, batch.last_samples[0])
        assert serial.last_energy == batch.last_energies[0]


class TestBoltzmannEquivalence:
    """Batched and repeated-serial sampling agree with exact eq. (11)."""

    @staticmethod
    def _exact_mean_energy(model, beta):
        energies = enumerate_energies(model)
        weights = np.exp(-beta * (energies - energies.min()))
        weights /= weights.sum()
        return float(weights @ energies)

    def test_batched_pbit_matches_exact_boltzmann(self):
        model = random_ising(4, rng=6, density=1.0)
        beta = 0.7
        exact = self._exact_mean_energy(model, beta)
        # Long fixed-temperature schedule: the last sample is Boltzmann.
        schedule = constant_beta_schedule(beta, 30)
        machine = PBitMachine(model, rng=11)
        batch = machine.anneal_many(schedule, 400)
        batched_mean = float(batch.last_energies.mean())

        serial_energies = [
            PBitMachine(model, rng=500 + t).anneal(schedule).last_energy
            for t in range(200)
        ]
        serial_mean = float(np.mean(serial_energies))

        spread = float(np.std(batch.last_energies))
        # Both execution paths within a few standard errors of the exact
        # Boltzmann average (and of each other).
        assert abs(batched_mean - exact) < 4.0 * spread / np.sqrt(400)
        assert abs(serial_mean - exact) < 4.0 * spread / np.sqrt(200)

    def test_batched_metropolis_matches_exact_boltzmann(self):
        model = random_ising(4, rng=8, density=1.0)
        beta = 0.7
        exact = self._exact_mean_energy(model, beta)
        schedule = constant_beta_schedule(beta, 30)
        batch = MetropolisMachine(model, rng=13).anneal_many(schedule, 400)
        spread = float(np.std(batch.last_energies))
        assert abs(float(batch.last_energies.mean()) - exact) \
            < 4.0 * spread / np.sqrt(400)

    def test_batched_chromatic_matches_exact_boltzmann_on_sparse(self):
        sparse_model = random_sparse_ising(8, degree=3, rng=5)
        beta = 0.6
        machine = ChromaticPBitMachine(sparse_model, rng=17)
        assert machine.num_colors < 8  # genuinely parallel update groups
        schedule = constant_beta_schedule(beta, 30)
        batch = machine.anneal_many(schedule, 400)

        # Exact Boltzmann average over all 2^8 states of the sparse model.
        n = sparse_model.num_spins
        codes = np.arange(2 ** n)
        spins = 2.0 * ((codes[:, None] >> np.arange(n)) & 1) - 1.0
        energies = np.array([sparse_model.energy(s) for s in spins])
        weights = np.exp(-beta * (energies - energies.min()))
        weights /= weights.sum()
        exact = float(weights @ energies)

        spread = float(np.std(batch.last_energies))
        assert abs(float(batch.last_energies.mean()) - exact) \
            < 4.0 * spread / np.sqrt(400)
