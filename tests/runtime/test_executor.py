"""Tests for the sharded solve_many executor (repro.runtime.executor)."""

import pickle

import numpy as np
import pytest

import repro
from repro.core.saim import SaimConfig
from repro.problems.generators import generate_qkp
from repro.runtime import (
    JobOutcome,
    SolveJob,
    SolveJobError,
    fleet_jobs,
    fused_blockers,
    iter_solve_many,
    solve_many,
)
from tests.helpers import tiny_knapsack_problem

FAST = SaimConfig(num_iterations=10, mcs_per_run=60, eta=5.0,
                  eta_decay="sqrt", normalize_step=True)


def fast_jobs(seeds=(0, 1, 2)):
    return [
        SolveJob(problem=tiny_knapsack_problem(), config=FAST, rng=seed)
        for seed in seeds
    ]


class TestValidation:
    def test_rejects_non_job(self):
        with pytest.raises(TypeError, match="SolveJob"):
            solve_many([tiny_knapsack_problem()])

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            list(iter_solve_many(fast_jobs(), max_workers=0))

    def test_empty_batch(self):
        report = solve_many([])
        assert report.outcomes == []
        assert report.stats.num_jobs == 0
        assert np.isnan(report.stats.best_cost)


class TestInProcessFallback:
    def test_results_in_job_order(self):
        jobs = fast_jobs((5, 6, 7))
        report = solve_many(jobs, max_workers=1)
        assert [o.index for o in report.outcomes] == [0, 1, 2]
        assert [o.job.rng for o in report.outcomes] == [5, 6, 7]

    def test_bit_identical_to_direct_solve_loop(self):
        """The acceptance contract: max_workers=1 == a plain solve loop."""
        instance = generate_qkp(12, 0.5, rng=2)
        jobs = [
            SolveJob(problem=instance, config=FAST, rng=seed,
                     num_replicas=replicas)
            for seed in (0, 1)
            for replicas in (1, 3)
        ]
        report = solve_many(jobs, max_workers=1)
        for job, result in zip(jobs, report.results):
            direct = repro.solve(
                instance, config=FAST, rng=job.rng,
                num_replicas=job.num_replicas,
            )
            assert result.best_cost == direct.best_cost
            np.testing.assert_array_equal(
                result.final_lambdas, direct.final_lambdas
            )
            np.testing.assert_array_equal(
                result.trace.sample_costs, direct.trace.sample_costs
            )

    def test_restart_knob_forwarded(self):
        """SolveJob.restart reaches the engine (warm == direct warm solve)."""
        instance = generate_qkp(12, 0.5, rng=2)
        job = SolveJob(problem=instance, config=FAST, rng=4, restart="warm")
        report = solve_many([job], max_workers=1)
        direct = repro.solve(instance, config=FAST, rng=4, restart="warm")
        assert report.results[0].best_cost == direct.best_cost
        np.testing.assert_array_equal(
            report.results[0].trace.sample_costs, direct.trace.sample_costs
        )

    def test_accepts_unpicklable_rng_in_process(self):
        job = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       rng=np.random.default_rng(3))
        report = solve_many([job], max_workers=1)
        assert report.outcomes[0].ok

    def test_streaming_yields_outcomes(self):
        seen = []
        for outcome in iter_solve_many(fast_jobs(), max_workers=1):
            seen.append(outcome.index)
            assert isinstance(outcome, JobOutcome)
            assert outcome.ok
        assert seen == [0, 1, 2]


class TestErrorPropagation:
    def failing_jobs(self):
        good = SolveJob(problem=tiny_knapsack_problem(), config=FAST, rng=0)
        bad = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       backend="no-such-machine", rng=1, tag="doomed")
        return [good, bad]

    def test_raises_solve_job_error_by_default(self):
        with pytest.raises(SolveJobError, match="doomed") as excinfo:
            solve_many(self.failing_jobs(), max_workers=1)
        assert "unknown backend" in str(excinfo.value)
        assert excinfo.value.outcome.index == 1

    def test_collect_mode_records_error_and_continues(self):
        report = solve_many(
            self.failing_jobs(), max_workers=1, raise_on_error=False
        )
        ok, failed = report.outcomes
        assert ok.ok and ok.result.found_feasible
        assert not failed.ok
        assert failed.result is None
        assert "unknown backend" in failed.error
        assert report.failed() == [failed]
        assert report.stats.num_failed == 1
        assert report.stats.num_ok == 1


class TestStats:
    def test_aggregates(self):
        report = solve_many(fast_jobs(), max_workers=1)
        stats = report.stats
        assert stats.num_jobs == 3
        assert stats.num_ok == 3
        assert stats.num_failed == 0
        assert stats.wall_seconds > 0
        assert stats.job_seconds_total > 0
        assert stats.jobs_per_second > 0
        assert stats.best_cost == pytest.approx(-8.0)
        assert stats.mean_best_cost <= 0.0
        assert "3/3 jobs ok" in stats.summary()

    def test_progress_callback_streams(self):
        seen = []
        solve_many(fast_jobs(), max_workers=1, progress=seen.append)
        assert sorted(o.index for o in seen) == [0, 1, 2]


class TestProcessPool:
    """max_workers > 1 shards across processes; results must match."""

    def test_sharded_matches_in_process(self):
        jobs = fast_jobs((0, 1, 2, 3))
        serial = solve_many(jobs, max_workers=1)
        sharded = solve_many(jobs, max_workers=2)
        assert [o.index for o in sharded.outcomes] == [0, 1, 2, 3]
        for a, b in zip(serial.results, sharded.results):
            assert a.best_cost == b.best_cost
            np.testing.assert_array_equal(a.final_lambdas, b.final_lambdas)

    def test_sharded_error_propagates(self):
        bad = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       backend="no-such-machine", tag="doomed")
        with pytest.raises(SolveJobError, match="doomed"):
            solve_many([*fast_jobs((0,)), bad], max_workers=2)

    def test_unpicklable_job_stays_in_error_channel(self):
        """Submit-side pickling failures must come back as failed outcomes,
        not raw exceptions that lose the rest of the batch."""
        bad = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       rng=lambda: 1, tag="unpicklable")
        report = solve_many(
            [*fast_jobs((0,)), bad], max_workers=2, raise_on_error=False
        )
        ok, failed = report.outcomes
        assert ok.ok and ok.result.found_feasible
        assert not failed.ok
        assert "pickle" in failed.error.lower()
        with pytest.raises(SolveJobError, match="unpicklable"):
            solve_many([*fast_jobs((0,)), bad], max_workers=2)


class TestJobPickling:
    """Jobs must survive the process boundary with every field intact."""

    def test_round_trip_with_method_and_options(self):
        job = SolveJob(
            problem=tiny_knapsack_problem(),
            method="ga",
            method_options={"population_size": 12, "num_children": 300},
            rng=4,
            tag="pickled-ga",
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.method == "ga"
        assert clone.method_options == {"population_size": 12,
                                        "num_children": 300}
        assert clone.backend is None
        assert clone.rng == 4
        assert clone.tag == "pickled-ga"

    def test_round_trip_full_annealing_job(self):
        job = SolveJob(
            problem=tiny_knapsack_problem(),
            method="saim",
            backend="quantized",
            config=FAST,
            num_replicas=3,
            aggregate="mean",
            rng=7,
            backend_options={"bits": 10},
            config_overrides={"num_iterations": 5},
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.backend == "quantized"
        assert clone.num_replicas == 3
        assert clone.aggregate == "mean"
        assert clone.backend_options == {"bits": 10}
        assert clone.config_overrides == {"num_iterations": 5}
        assert clone.config == FAST

    def test_pickled_job_executes_identically(self):
        from repro.runtime.executor import _execute_job

        job = SolveJob(problem=tiny_knapsack_problem(), config=FAST, rng=0)
        clone = pickle.loads(pickle.dumps(job))
        assert _execute_job(0, job).result == _execute_job(0, clone).result


class TestMethodJobs:
    """Baseline methods flow through the same executor pipe."""

    def test_mixed_method_batch(self):
        from repro.problems.generators import generate_mkp

        instance = generate_mkp(12, 2, rng=3)
        jobs = [
            SolveJob(problem=instance, method="saim", config=FAST, rng=0),
            SolveJob(problem=instance, method="greedy"),
            SolveJob(problem=instance, method="milp"),
            SolveJob(problem=instance, method="ga", rng=0,
                     method_options={"population_size": 10,
                                     "num_children": 100}),
        ]
        report = solve_many(jobs, max_workers=1)
        assert report.stats.num_ok == 4
        methods = [outcome.result.method for outcome in report.outcomes]
        assert methods == ["saim", "greedy", "milp", "ga"]
        exact = report.outcomes[2].result.best_cost
        assert report.stats.best_cost == pytest.approx(exact)

    def test_reports_equal_serial_solves(self):
        """Acceptance: max_workers=1 report == the direct solve, under
        SolveReport equality (which ignores wall time)."""
        import repro

        jobs = fast_jobs((0, 1, 2))
        report = solve_many(jobs, max_workers=1)
        for job, result in zip(jobs, report.results):
            direct = repro.solve(job.problem, config=FAST, rng=job.rng)
            assert result == direct

    def test_sharded_reports_equal_serial_reports(self):
        jobs = fast_jobs((0, 1, 2, 3))
        serial = solve_many(jobs, max_workers=1)
        sharded = solve_many(jobs, max_workers=2)
        for a, b in zip(serial.results, sharded.results):
            assert a == b


class TestExports:
    def test_front_door_exports(self):
        assert repro.solve_many is solve_many
        assert repro.SolveJob is SolveJob
        for name in ("solve_many", "iter_solve_many", "SolveJob",
                     "SolveJobError", "SolveManyReport", "SolveManyStats",
                     "sweep_backends", "BackendSweep"):
            assert name in repro.__all__

    def test_job_label(self):
        job = SolveJob(problem=tiny_knapsack_problem(), backend="quantized",
                       num_replicas=4, rng=9)
        label = job.label(2)
        assert "tiny-knap" in label
        assert "quantized" in label and "R=4" in label
        assert SolveJob(problem=None, tag="custom").label(0) == "custom"


class TestFleetJobs:
    """fleet_jobs: one spawned stream per job, shared solve settings."""

    def test_streams_match_spawn_rngs(self):
        from repro.utils.rng import spawn_rngs

        problems = [generate_qkp(10, 0.5, rng=index) for index in range(3)]
        jobs = fleet_jobs(problems, rng=11, config=FAST)
        expected = spawn_rngs(11, len(problems))
        for job, stream in zip(jobs, expected):
            draw_a = job.rng.integers(0, 10**9)
            draw_b = stream.integers(0, 10**9)
            assert draw_a == draw_b
        assert all(job.config is FAST for job in jobs)

    def test_tags(self):
        problems = [generate_qkp(8, 0.5, rng=0)]
        (job,) = fleet_jobs(problems, rng=0, tags=["alpha"])
        assert job.tag == "alpha"
        with pytest.raises(ValueError, match="one tag per problem"):
            fleet_jobs(problems, rng=0, tags=["a", "b"])

    def test_rng_in_shared_fields_rejected(self):
        with pytest.raises(TypeError, match="rng"):
            fleet_jobs([generate_qkp(8, 0.5, rng=0)], 3, rng=4)


class TestFusedStrategy:
    """strategy='fused': one solve_fleet call, bit-identical to process."""

    def _fleet(self, seed):
        problems = [
            generate_qkp(12, 0.5, rng=100 + index) for index in range(4)
        ]
        return fleet_jobs(problems, rng=seed, config=FAST)

    def test_fused_equals_process(self):
        fused = solve_many(self._fleet(42), strategy="fused")
        process = solve_many(self._fleet(42), strategy="process")
        assert fused.stats.strategy == "fused"
        assert process.stats.strategy == "process"
        for a, b in zip(fused.results, process.results):
            assert a.best_cost == b.best_cost
            assert a.feasible == b.feasible
            np.testing.assert_array_equal(
                a.detail.final_lambdas, b.detail.final_lambdas
            )
            np.testing.assert_array_equal(
                a.detail.trace.energies, b.detail.trace.energies
            )

    def test_int_seed_jobs_fuse_identically(self):
        jobs = [
            SolveJob(problem=generate_qkp(10, 0.5, rng=index), config=FAST,
                     rng=7)
            for index in range(3)
        ]
        fused = solve_many(jobs, strategy="fused")
        process = solve_many(jobs, strategy="process")
        for a, b in zip(fused.results, process.results):
            assert a.best_cost == b.best_cost

    def test_blockers_reported(self):
        mixed = [
            SolveJob(problem=tiny_knapsack_problem(), method="greedy"),
            SolveJob(problem=tiny_knapsack_problem(), config=FAST),
        ]
        blockers = fused_blockers(mixed)
        assert any("greedy" in blocker for blocker in blockers)
        assert any("config differs" in blocker for blocker in blockers)
        with pytest.raises(ValueError, match="shareable"):
            solve_many(mixed, strategy="fused")
        assert fused_blockers(self._fleet(0)) == []
        assert fused_blockers([]) == ["batch is empty"]

    def test_fused_outcome_seconds_split_evenly(self):
        report = solve_many(self._fleet(1), strategy="fused")
        seconds = {outcome.seconds for outcome in report.outcomes}
        assert len(seconds) == 1  # indivisible fleet wall, shared evenly
        assert seconds.pop() > 0

    def test_fused_failure_reported_on_every_outcome(self):
        jobs = self._fleet(2)
        bad = [
            SolveJob(problem=job.problem, config=FAST, rng=job.rng,
                     initial_lambdas=np.zeros(9))
            for job in jobs
        ]
        report = solve_many(bad, strategy="fused", raise_on_error=False)
        assert all(not outcome.ok for outcome in report.outcomes)
        assert all("shape" in outcome.error for outcome in report.outcomes)
        with pytest.raises(SolveJobError):
            solve_many(self._fleet_bad(), strategy="fused")

    def _fleet_bad(self):
        return [
            SolveJob(problem=job.problem, config=FAST, rng=job.rng,
                     initial_lambdas=np.zeros(9))
            for job in self._fleet(3)
        ]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            solve_many(fast_jobs(), strategy="magic")


class TestAutoStrategy:
    def test_small_shareable_batch_fuses(self):
        problems = [generate_qkp(10, 0.5, rng=index) for index in range(3)]
        report = solve_many(fleet_jobs(problems, rng=0, config=FAST),
                            strategy="auto")
        assert report.stats.strategy == "fused"

    def test_non_shareable_batch_falls_back(self):
        jobs = [
            SolveJob(problem=tiny_knapsack_problem(), method="greedy"),
            SolveJob(problem=tiny_knapsack_problem(), config=FAST),
        ]
        report = solve_many(jobs, strategy="auto", raise_on_error=False)
        assert report.stats.strategy == "process"

    def test_single_job_stays_process(self):
        report = solve_many(fast_jobs((0,)), strategy="auto")
        assert report.stats.strategy == "process"

    def test_large_instances_stay_process(self):
        problems = [generate_qkp(150, 0.3, rng=index) for index in range(2)]
        jobs = fleet_jobs(
            problems, rng=0, config=FAST,
            config_overrides={"num_iterations": 1, "mcs_per_run": 2},
        )
        assert solve_many(
            jobs, strategy="auto"
        ).stats.strategy == "process"

    def test_stats_summary_names_strategy(self):
        problems = [generate_qkp(10, 0.5, rng=index) for index in range(2)]
        report = solve_many(fleet_jobs(problems, rng=0, config=FAST),
                            strategy="fused")
        assert "[fused]" in report.stats.summary()
        assert "jobs/s" in report.stats.summary()
