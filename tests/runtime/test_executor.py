"""Tests for the sharded solve_many executor (repro.runtime.executor)."""

import pickle

import numpy as np
import pytest

import repro
from repro.core.saim import SaimConfig
from repro.problems.generators import generate_qkp
from repro.runtime import (
    JobOutcome,
    SolveJob,
    SolveJobError,
    iter_solve_many,
    solve_many,
)
from tests.helpers import tiny_knapsack_problem

FAST = SaimConfig(num_iterations=10, mcs_per_run=60, eta=5.0,
                  eta_decay="sqrt", normalize_step=True)


def fast_jobs(seeds=(0, 1, 2)):
    return [
        SolveJob(problem=tiny_knapsack_problem(), config=FAST, rng=seed)
        for seed in seeds
    ]


class TestValidation:
    def test_rejects_non_job(self):
        with pytest.raises(TypeError, match="SolveJob"):
            solve_many([tiny_knapsack_problem()])

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            list(iter_solve_many(fast_jobs(), max_workers=0))

    def test_empty_batch(self):
        report = solve_many([])
        assert report.outcomes == []
        assert report.stats.num_jobs == 0
        assert np.isnan(report.stats.best_cost)


class TestInProcessFallback:
    def test_results_in_job_order(self):
        jobs = fast_jobs((5, 6, 7))
        report = solve_many(jobs, max_workers=1)
        assert [o.index for o in report.outcomes] == [0, 1, 2]
        assert [o.job.rng for o in report.outcomes] == [5, 6, 7]

    def test_bit_identical_to_direct_solve_loop(self):
        """The acceptance contract: max_workers=1 == a plain solve loop."""
        instance = generate_qkp(12, 0.5, rng=2)
        jobs = [
            SolveJob(problem=instance, config=FAST, rng=seed,
                     num_replicas=replicas)
            for seed in (0, 1)
            for replicas in (1, 3)
        ]
        report = solve_many(jobs, max_workers=1)
        for job, result in zip(jobs, report.results):
            direct = repro.solve(
                instance, config=FAST, rng=job.rng,
                num_replicas=job.num_replicas,
            )
            assert result.best_cost == direct.best_cost
            np.testing.assert_array_equal(
                result.final_lambdas, direct.final_lambdas
            )
            np.testing.assert_array_equal(
                result.trace.sample_costs, direct.trace.sample_costs
            )

    def test_restart_knob_forwarded(self):
        """SolveJob.restart reaches the engine (warm == direct warm solve)."""
        instance = generate_qkp(12, 0.5, rng=2)
        job = SolveJob(problem=instance, config=FAST, rng=4, restart="warm")
        report = solve_many([job], max_workers=1)
        direct = repro.solve(instance, config=FAST, rng=4, restart="warm")
        assert report.results[0].best_cost == direct.best_cost
        np.testing.assert_array_equal(
            report.results[0].trace.sample_costs, direct.trace.sample_costs
        )

    def test_accepts_unpicklable_rng_in_process(self):
        job = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       rng=np.random.default_rng(3))
        report = solve_many([job], max_workers=1)
        assert report.outcomes[0].ok

    def test_streaming_yields_outcomes(self):
        seen = []
        for outcome in iter_solve_many(fast_jobs(), max_workers=1):
            seen.append(outcome.index)
            assert isinstance(outcome, JobOutcome)
            assert outcome.ok
        assert seen == [0, 1, 2]


class TestErrorPropagation:
    def failing_jobs(self):
        good = SolveJob(problem=tiny_knapsack_problem(), config=FAST, rng=0)
        bad = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       backend="no-such-machine", rng=1, tag="doomed")
        return [good, bad]

    def test_raises_solve_job_error_by_default(self):
        with pytest.raises(SolveJobError, match="doomed") as excinfo:
            solve_many(self.failing_jobs(), max_workers=1)
        assert "unknown backend" in str(excinfo.value)
        assert excinfo.value.outcome.index == 1

    def test_collect_mode_records_error_and_continues(self):
        report = solve_many(
            self.failing_jobs(), max_workers=1, raise_on_error=False
        )
        ok, failed = report.outcomes
        assert ok.ok and ok.result.found_feasible
        assert not failed.ok
        assert failed.result is None
        assert "unknown backend" in failed.error
        assert report.failed() == [failed]
        assert report.stats.num_failed == 1
        assert report.stats.num_ok == 1


class TestStats:
    def test_aggregates(self):
        report = solve_many(fast_jobs(), max_workers=1)
        stats = report.stats
        assert stats.num_jobs == 3
        assert stats.num_ok == 3
        assert stats.num_failed == 0
        assert stats.wall_seconds > 0
        assert stats.job_seconds_total > 0
        assert stats.jobs_per_second > 0
        assert stats.best_cost == pytest.approx(-8.0)
        assert stats.mean_best_cost <= 0.0
        assert "3/3 jobs ok" in stats.summary()

    def test_progress_callback_streams(self):
        seen = []
        solve_many(fast_jobs(), max_workers=1, progress=seen.append)
        assert sorted(o.index for o in seen) == [0, 1, 2]


class TestProcessPool:
    """max_workers > 1 shards across processes; results must match."""

    def test_sharded_matches_in_process(self):
        jobs = fast_jobs((0, 1, 2, 3))
        serial = solve_many(jobs, max_workers=1)
        sharded = solve_many(jobs, max_workers=2)
        assert [o.index for o in sharded.outcomes] == [0, 1, 2, 3]
        for a, b in zip(serial.results, sharded.results):
            assert a.best_cost == b.best_cost
            np.testing.assert_array_equal(a.final_lambdas, b.final_lambdas)

    def test_sharded_error_propagates(self):
        bad = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       backend="no-such-machine", tag="doomed")
        with pytest.raises(SolveJobError, match="doomed"):
            solve_many([*fast_jobs((0,)), bad], max_workers=2)

    def test_unpicklable_job_stays_in_error_channel(self):
        """Submit-side pickling failures must come back as failed outcomes,
        not raw exceptions that lose the rest of the batch."""
        bad = SolveJob(problem=tiny_knapsack_problem(), config=FAST,
                       rng=lambda: 1, tag="unpicklable")
        report = solve_many(
            [*fast_jobs((0,)), bad], max_workers=2, raise_on_error=False
        )
        ok, failed = report.outcomes
        assert ok.ok and ok.result.found_feasible
        assert not failed.ok
        assert "pickle" in failed.error.lower()
        with pytest.raises(SolveJobError, match="unpicklable"):
            solve_many([*fast_jobs((0,)), bad], max_workers=2)


class TestJobPickling:
    """Jobs must survive the process boundary with every field intact."""

    def test_round_trip_with_method_and_options(self):
        job = SolveJob(
            problem=tiny_knapsack_problem(),
            method="ga",
            method_options={"population_size": 12, "num_children": 300},
            rng=4,
            tag="pickled-ga",
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.method == "ga"
        assert clone.method_options == {"population_size": 12,
                                        "num_children": 300}
        assert clone.backend is None
        assert clone.rng == 4
        assert clone.tag == "pickled-ga"

    def test_round_trip_full_annealing_job(self):
        job = SolveJob(
            problem=tiny_knapsack_problem(),
            method="saim",
            backend="quantized",
            config=FAST,
            num_replicas=3,
            aggregate="mean",
            rng=7,
            backend_options={"bits": 10},
            config_overrides={"num_iterations": 5},
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.backend == "quantized"
        assert clone.num_replicas == 3
        assert clone.aggregate == "mean"
        assert clone.backend_options == {"bits": 10}
        assert clone.config_overrides == {"num_iterations": 5}
        assert clone.config == FAST

    def test_pickled_job_executes_identically(self):
        from repro.runtime.executor import _execute_job

        job = SolveJob(problem=tiny_knapsack_problem(), config=FAST, rng=0)
        clone = pickle.loads(pickle.dumps(job))
        assert _execute_job(0, job).result == _execute_job(0, clone).result


class TestMethodJobs:
    """Baseline methods flow through the same executor pipe."""

    def test_mixed_method_batch(self):
        from repro.problems.generators import generate_mkp

        instance = generate_mkp(12, 2, rng=3)
        jobs = [
            SolveJob(problem=instance, method="saim", config=FAST, rng=0),
            SolveJob(problem=instance, method="greedy"),
            SolveJob(problem=instance, method="milp"),
            SolveJob(problem=instance, method="ga", rng=0,
                     method_options={"population_size": 10,
                                     "num_children": 100}),
        ]
        report = solve_many(jobs, max_workers=1)
        assert report.stats.num_ok == 4
        methods = [outcome.result.method for outcome in report.outcomes]
        assert methods == ["saim", "greedy", "milp", "ga"]
        exact = report.outcomes[2].result.best_cost
        assert report.stats.best_cost == pytest.approx(exact)

    def test_reports_equal_serial_solves(self):
        """Acceptance: max_workers=1 report == the direct solve, under
        SolveReport equality (which ignores wall time)."""
        import repro

        jobs = fast_jobs((0, 1, 2))
        report = solve_many(jobs, max_workers=1)
        for job, result in zip(jobs, report.results):
            direct = repro.solve(job.problem, config=FAST, rng=job.rng)
            assert result == direct

    def test_sharded_reports_equal_serial_reports(self):
        jobs = fast_jobs((0, 1, 2, 3))
        serial = solve_many(jobs, max_workers=1)
        sharded = solve_many(jobs, max_workers=2)
        for a, b in zip(serial.results, sharded.results):
            assert a == b


class TestExports:
    def test_front_door_exports(self):
        assert repro.solve_many is solve_many
        assert repro.SolveJob is SolveJob
        for name in ("solve_many", "iter_solve_many", "SolveJob",
                     "SolveJobError", "SolveManyReport", "SolveManyStats",
                     "sweep_backends", "BackendSweep"):
            assert name in repro.__all__

    def test_job_label(self):
        job = SolveJob(problem=tiny_knapsack_problem(), backend="quantized",
                       num_replicas=4, rng=9)
        label = job.label(2)
        assert "tiny-knap" in label
        assert "quantized" in label and "R=4" in label
        assert SolveJob(problem=None, tag="custom").label(0) == "custom"
