"""Tests for the warm-start solver session (repro.runtime.session)."""

import numpy as np
import pytest

import repro
from repro.core.report import SolveReport
from repro.problems.generators import generate_mkp, generate_qkp
from repro.problems.qkp import QkpInstance
from repro.runtime.session import SolverSession, problem_fingerprint

FAST = dict(num_iterations=12, mcs_per_run=60, eta=5.0,
            eta_decay="sqrt", normalize_step=True)


def perturbed_qkp(instance: QkpInstance, rng, value_jitter=0.05,
                  capacity_factor=0.97) -> QkpInstance:
    """A slightly different instance of the same family/shape."""
    r = np.random.default_rng(rng)
    values = np.maximum(
        0.0,
        instance.values
        * (1.0 + value_jitter * r.uniform(-1, 1, instance.values.shape)),
    )
    return QkpInstance(
        values=values,
        pair_values=instance.pair_values,
        weights=instance.weights,
        capacity=instance.capacity * capacity_factor,
        name=f"{instance.name}-perturbed",
    )


class TestFingerprint:
    def test_same_shape_same_fingerprint(self):
        instance = generate_qkp(20, 0.5, rng=1)
        assert problem_fingerprint(instance) == problem_fingerprint(
            perturbed_qkp(instance, rng=2)
        )

    def test_different_size_differs(self):
        a = generate_qkp(20, 0.5, rng=1)
        b = generate_qkp(21, 0.5, rng=1)
        assert problem_fingerprint(a) != problem_fingerprint(b)

    def test_different_family_differs(self):
        qkp = generate_qkp(20, 0.5, rng=1)
        mkp = generate_mkp(20, 1, rng=1)
        assert problem_fingerprint(qkp) != problem_fingerprint(mkp)

    def test_constraint_count_in_fingerprint(self):
        a = generate_mkp(15, 2, rng=1)
        b = generate_mkp(15, 3, rng=1)
        assert problem_fingerprint(a) != problem_fingerprint(b)


class TestSessionBasics:
    def test_resolve_returns_report_and_caches(self):
        session = SolverSession(rng=0, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        report = session.resolve(instance)
        assert isinstance(report, SolveReport)
        assert session.num_solves == 1
        assert session.num_warm_starts == 0
        assert session.num_cached == 1
        cached = session.cached_lambdas(instance)
        np.testing.assert_array_equal(cached, report.detail.final_lambdas)

    def test_first_resolve_is_cold_and_matches_front_door(self):
        session = SolverSession(rng=0, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        via_session = session.resolve(instance)
        direct = repro.solve(instance, rng=0, **FAST)
        assert via_session == direct  # SolveReport equality ignores wall time

    def test_second_resolve_warm_starts(self):
        session = SolverSession(rng=0, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        session.resolve(instance)
        session.resolve(perturbed_qkp(instance, rng=5))
        assert session.num_warm_starts == 1

    def test_reset_forgets_multipliers(self):
        session = SolverSession(rng=0, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        session.resolve(instance)
        session.reset()
        assert session.num_cached == 0
        assert session.cached_lambdas(instance) is None
        session.resolve(instance)
        assert session.num_warm_starts == 0

    def test_warm_start_false_stays_cold(self):
        session = SolverSession(rng=0, warm_start=False, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        session.resolve(instance)
        warm = session.resolve(instance)
        assert session.num_warm_starts == 0
        cold = repro.solve(instance, rng=0, **FAST)
        assert warm == cold

    def test_unknown_method_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown method"):
            SolverSession(method="quantum")

    def test_baseline_method_session_never_warm_starts(self):
        session = SolverSession(method="greedy")
        instance = generate_qkp(14, 0.5, rng=3)
        first = session.resolve(instance)
        second = session.resolve(instance)
        assert first == second
        assert not session.warm_start
        assert session.num_warm_starts == 0
        assert session.num_cached == 0  # greedy exposes no multipliers

    def test_per_call_rng_and_overrides(self):
        session = SolverSession(rng=0, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        report = session.resolve(instance, rng=9, num_iterations=7)
        assert report.num_iterations == 7
        direct = repro.solve(
            instance, rng=9, **{**FAST, "num_iterations": 7}
        )
        assert report == direct

    def test_failed_resolve_does_not_skew_counters(self):
        session = SolverSession(rng=0, **FAST)
        instance = generate_qkp(14, 0.5, rng=3)
        session.resolve(instance)
        with pytest.raises(ValueError):
            session.resolve(instance, num_itertions=5)  # typo'd override
        assert session.num_solves == 1
        assert session.num_warm_starts == 0

    def test_repr_mentions_counts(self):
        session = SolverSession(rng=0, **FAST)
        session.resolve(generate_qkp(10, 0.5, rng=1))
        text = repr(session)
        assert "solves=1" in text and "cached=1" in text


class TestWarmStartRegression:
    """Acceptance: a warm resolve of a perturbed instance reaches its first
    feasible sample in no more iterations than a cold solve (seeded)."""

    CONFIG = dict(num_iterations=40, mcs_per_run=150, eta=20.0)

    @pytest.mark.parametrize("instance_seed", [1, 2])
    def test_warm_first_feasible_no_later_than_cold(self, instance_seed):
        instance = generate_qkp(30, 0.5, rng=instance_seed)
        perturbed = perturbed_qkp(instance, rng=100 + instance_seed)

        session = SolverSession(rng=7, **self.CONFIG)
        session.resolve(instance)
        warm = session.resolve(perturbed)
        cold = repro.solve(perturbed, rng=7, **self.CONFIG)

        warm_first = warm.detail.trace.first_feasible_iteration()
        cold_first = cold.detail.trace.first_feasible_iteration()
        assert warm_first is not None
        if cold_first is not None:
            assert warm_first <= cold_first

    def test_warm_solution_no_worse(self):
        instance = generate_qkp(30, 0.5, rng=2)
        perturbed = perturbed_qkp(instance, rng=102)
        session = SolverSession(rng=7, **self.CONFIG)
        session.resolve(instance)
        warm = session.resolve(perturbed)
        cold = repro.solve(perturbed, rng=7, **self.CONFIG)
        assert warm.feasible
        assert warm.best_cost <= cold.best_cost + 1e-9
