"""Shared builders for the test suite."""

from __future__ import annotations

import numpy as np

from repro.core.problem import ConstrainedProblem, LinearConstraints
from repro.ising.model import IsingModel, QuboModel
from repro.utils.rng import ensure_rng


def random_qubo(n: int, rng=None, density: float = 0.7) -> QuboModel:
    """Random dense-ish QUBO with coefficients in [-1, 1]."""
    rng = ensure_rng(rng)
    upper = np.triu(rng.uniform(-1, 1, size=(n, n)), k=1)
    upper *= np.triu(rng.uniform(0, 1, size=(n, n)) < density, k=1)
    quad = upper + upper.T
    linear = rng.uniform(-1, 1, size=n)
    return QuboModel(quad, linear, offset=float(rng.uniform(-1, 1)))


def random_ising(n: int, rng=None, density: float = 0.7) -> IsingModel:
    """Random dense-ish Ising model with coefficients in [-1, 1]."""
    rng = ensure_rng(rng)
    upper = np.triu(rng.uniform(-1, 1, size=(n, n)), k=1)
    upper *= np.triu(rng.uniform(0, 1, size=(n, n)) < density, k=1)
    coupling = upper + upper.T
    fields = rng.uniform(-1, 1, size=n)
    return IsingModel(coupling, fields, offset=float(rng.uniform(-1, 1)))


def all_binary_vectors(n: int) -> np.ndarray:
    """Every 0/1 vector of length n, as an array of shape (2**n, n)."""
    codes = np.arange(2**n, dtype=np.int64)
    return ((codes[:, None] >> np.arange(n)) & 1).astype(np.int8)


def tiny_constrained_problem() -> ConstrainedProblem:
    """3-variable problem with one equality, solvable by hand.

    minimize  -x0 - 2 x1 - 3 x2   s.t.  x0 + x1 + x2 = 2
    Optimal: x = (0, 1, 1), objective -5.
    """
    n = 3
    return ConstrainedProblem(
        quadratic=np.zeros((n, n)),
        linear=np.array([-1.0, -2.0, -3.0]),
        equalities=LinearConstraints(np.ones((1, n)), np.array([2.0])),
        name="tiny-eq",
    )


def tiny_knapsack_problem() -> ConstrainedProblem:
    """3-variable knapsack with one inequality, solvable by hand.

    minimize  -3 x0 - 4 x1 - 5 x2   s.t.  2 x0 + 3 x1 + 4 x2 <= 6
    Optimal: x = (1, 0, 1), objective -8.
    """
    n = 3
    return ConstrainedProblem(
        quadratic=np.zeros((n, n)),
        linear=np.array([-3.0, -4.0, -5.0]),
        inequalities=LinearConstraints(
            np.array([[2.0, 3.0, 4.0]]), np.array([6.0])
        ),
        name="tiny-knap",
    )
