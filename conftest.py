"""Pytest bootstrap: make `src/` importable without an installed package.

The environment used for grading has an old setuptools without `wheel`, so
`pip install -e .` may be unavailable; `python setup.py develop` works, and
this shim makes `pytest` work even with no install at all.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
