"""Pytest bootstrap: make `src/` importable without an installed package.

The environment used for grading has an old setuptools without `wheel`, so
`pip install -e .` may be unavailable; `python setup.py develop` works, and
this shim makes `pytest` work even with no install at all.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# Hermeticity: a host-calibrated perf model under ~/.cache/repro would make
# `method="auto"` plans (and everything pinned to them) vary by machine.
# An empty REPRO_PERF_MODEL disables the default model path, so the suite
# always exercises the deterministic heuristic ladder; tests that want a
# model pass `method_options={"model_path": ...}` explicitly.
os.environ.setdefault("REPRO_PERF_MODEL", "")
